//! Simulated time.
//!
//! Time is represented as an integer number of microseconds since the start
//! of the simulation. Integer time keeps the event order total and exactly
//! reproducible across runs and platforms, which the 300-configuration
//! studies in the paper depend on; microsecond resolution is three orders of
//! magnitude finer than the smallest cost constant in the paper (the 50 ms
//! message startup cost).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, counted in microseconds from simulation start.
///
/// # Examples
///
/// ```
/// use wadc_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_micros(), 2_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, counted in microseconds.
///
/// # Examples
///
/// ```
/// use wadc_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(50) * 3;
/// assert_eq!(d.as_secs_f64(), 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Returns the number of whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time since simulation start as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Returns the number of whole microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns this duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the longer of `self` and `other`.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the shorter of `self` and `other`.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`SimDuration::saturating_sub`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.05).as_micros(), 50_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::ZERO);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_secs(1).max(SimDuration::from_secs(2)),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(7).to_string(), "0.000007s");
    }

    #[test]
    fn scalar_ops() {
        assert_eq!(SimDuration::from_secs(3) * 4, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(12) / 4, SimDuration::from_secs(3));
    }
}
