//! # wadc-sim — deterministic discrete-event simulation kernel
//!
//! The paper evaluated its placement algorithms "using a detailed discrete
//! event simulation of the system using CSIM". CSIM is a commercial,
//! closed-source C library; this crate is the substitute substrate: a small,
//! fully deterministic DES kernel providing
//!
//! - simulated time ([`time::SimTime`], [`time::SimDuration`]) with integer
//!   microsecond resolution,
//! - a future event list ([`event::EventQueue`]) with a stable
//!   `(time, scheduling order)` total order,
//! - single-server priority resources ([`resource::Resource`]) modelling
//!   half-duplex NICs, disks and CPUs,
//! - statistics collectors ([`stats`]) and seed derivation ([`rng`]).
//!
//! Unlike CSIM's process-oriented style, the kernel is event-oriented: the
//! caller owns all world state and handles each popped event. This fits
//! Rust's ownership model and keeps the simulation single-threaded and
//! exactly reproducible.
//!
//! # Examples
//!
//! A two-event simulation:
//!
//! ```
//! use wadc_sim::event::EventQueue;
//! use wadc_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev {
//!     Ping,
//!     Pong,
//! }
//!
//! let mut q = EventQueue::new();
//! q.schedule_in(SimDuration::from_millis(10), Ev::Ping);
//! let mut log = Vec::new();
//! while let Some((t, _, ev)) = q.pop() {
//!     match ev {
//!         Ev::Ping => {
//!             log.push((t, "ping"));
//!             q.schedule_in(SimDuration::from_millis(5), Ev::Pong);
//!         }
//!         Ev::Pong => log.push((t, "pong")),
//!     }
//! }
//! assert_eq!(log[1].0, SimTime::from_millis(15));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventId, EventQueue};
pub use resource::{Priority, Resource};
pub use time::{SimDuration, SimTime};
