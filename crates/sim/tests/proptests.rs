//! Randomized tests of the simulation kernel's ordering guarantees.
//!
//! Each test draws many random cases from the in-repo [`Rng64`] so runs
//! are deterministic and platform-independent — property-based testing
//! without an external framework.

use wadc_sim::event::EventQueue;
use wadc_sim::resource::{Priority, Resource};
use wadc_sim::rng::{derive_seed2, Rng64};
use wadc_sim::stats::Tally;
use wadc_sim::time::{SimDuration, SimTime};

const CASES: u64 = 64;

fn case_rng(test: u64, case: u64) -> Rng64 {
    Rng64::seed_from_u64(derive_seed2(0x51D0_7E57, test, case))
}

/// Events pop in non-decreasing time order, with scheduling order breaking
/// ties, regardless of insertion order.
#[test]
fn event_queue_total_order() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let n = rng.range_usize(199) + 1;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 999)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, id, seq)) = q.pop() {
            popped.push((t, id, seq));
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t1, id1, _), (t2, id2, _)) = (w[0], w[1]);
            assert!(t1 < t2 || (t1 == t2 && id1 < id2));
        }
        // Every event's pop time equals its scheduled time.
        for (t, _, seq) in popped {
            assert_eq!(t, SimTime::from_micros(times[seq]));
        }
    }
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn event_queue_cancellation() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let n = rng.range_usize(99) + 1;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 999)).collect();
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for &id in &ids {
            if rng.bool_with(0.5) {
                q.cancel(id);
                cancelled.insert(id);
            }
        }
        let mut seen = 0;
        while let Some((_, id, _)) = q.pop() {
            assert!(!cancelled.contains(&id));
            seen += 1;
        }
        assert_eq!(seen, times.len() - cancelled.len());
    }
}

/// A resource serves every request exactly once, high priority first among
/// waiters, FIFO within a class.
#[test]
fn resource_serves_all_in_priority_order() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let n = rng.range_usize(98) + 2;
        let prios: Vec<bool> = (0..n).map(|_| rng.bool_with(0.5)).collect();
        let mut r: Resource<usize> = Resource::new();
        let mut immediately_served = Vec::new();
        for (i, &high) in prios.iter().enumerate() {
            let p = if high {
                Priority::High
            } else {
                Priority::Normal
            };
            if let Some(item) = r.request(i, p) {
                immediately_served.push(item);
            }
        }
        // Only the first request enters service immediately.
        assert_eq!(&immediately_served, &[0]);
        let mut served = vec![0];
        while let Some(next) = r.release() {
            served.push(next);
        }
        assert_eq!(served.len(), prios.len());
        // After the first, all highs (FIFO) then all normals (FIFO).
        let queued = &served[1..];
        let highs: Vec<usize> = (1..prios.len()).filter(|&i| prios[i]).collect();
        let normals: Vec<usize> = (1..prios.len()).filter(|&i| !prios[i]).collect();
        let expected: Vec<usize> = highs.into_iter().chain(normals).collect();
        assert_eq!(queued, &expected[..]);
    }
}

/// Welford tally agrees with the naive two-pass computation.
#[test]
fn tally_matches_naive() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let n = rng.range_usize(199) + 1;
        let values: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let tally: Tally = values.iter().copied().collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!((tally.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        assert!((tally.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        assert_eq!(tally.count(), values.len() as u64);
    }
}

/// Duration arithmetic is consistent: (t + d) - t == d.
#[test]
fn time_addition_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let t = rng.range_u64(0, u64::MAX / 4 - 1);
        let d = rng.range_u64(0, u64::MAX / 4 - 1);
        let base = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        assert_eq!((base + dur) - base, dur);
        assert_eq!((base + dur) - dur, base);
    }
}
