//! Property-based tests of the simulation kernel's ordering guarantees.

use proptest::prelude::*;
use wadc_sim::event::EventQueue;
use wadc_sim::resource::{Priority, Resource};
use wadc_sim::stats::Tally;
use wadc_sim::time::{SimDuration, SimTime};

proptest! {
    /// Events pop in non-decreasing time order, with scheduling order
    /// breaking ties, regardless of insertion order.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, id, seq)) = q.pop() {
            popped.push((t, id, seq));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t1, id1, _), (t2, id2, _)) = (w[0], w[1]);
            prop_assert!(t1 < t2 || (t1 == t2 && id1 < id2));
        }
        // Every event's pop time equals its scheduled time.
        for (t, _, seq) in popped {
            prop_assert_eq!(t, SimTime::from_micros(times[seq]));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (id, &c) in ids.iter().zip(&cancel_mask) {
            if c {
                q.cancel(*id);
                cancelled.insert(*id);
            }
        }
        let mut seen = 0;
        while let Some((_, id, _)) = q.pop() {
            prop_assert!(!cancelled.contains(&id));
            seen += 1;
        }
        prop_assert_eq!(seen, times.len() - cancelled.len());
    }

    /// A resource serves every request exactly once, high priority first
    /// among waiters, FIFO within a class.
    #[test]
    fn resource_serves_all_in_priority_order(
        prios in proptest::collection::vec(any::<bool>(), 2..100),
    ) {
        let mut r: Resource<usize> = Resource::new();
        let mut immediately_served = Vec::new();
        for (i, &high) in prios.iter().enumerate() {
            let p = if high { Priority::High } else { Priority::Normal };
            if let Some(item) = r.request(i, p) {
                immediately_served.push(item);
            }
        }
        // Only the first request enters service immediately.
        prop_assert_eq!(&immediately_served, &[0]);
        let mut served = vec![0];
        while let Some(next) = r.release() {
            served.push(next);
        }
        prop_assert_eq!(served.len(), prios.len());
        // After the first, all highs (FIFO) then all normals (FIFO).
        let queued = &served[1..];
        let highs: Vec<usize> = (1..prios.len()).filter(|&i| prios[i]).collect();
        let normals: Vec<usize> = (1..prios.len()).filter(|&i| !prios[i]).collect();
        let expected: Vec<usize> = highs.into_iter().chain(normals).collect();
        prop_assert_eq!(queued, &expected[..]);
    }

    /// Welford tally agrees with the naive two-pass computation.
    #[test]
    fn tally_matches_naive(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let tally: Tally = values.iter().copied().collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((tally.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((tally.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(tally.count(), values.len() as u64);
    }

    /// Duration arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn time_addition_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let base = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((base + dur) - base, dur);
        prop_assert_eq!((base + dur) - dur, base);
    }
}
