//! Bandwidth-aware combination ordering.
//!
//! The paper distinguishes two adaptation levers: changing the *order* of
//! combination operations (the query-scrambling lineage) and changing
//! their *location* (its contribution). Its experiments use two fixed,
//! bandwidth-oblivious orders — the complete binary tree and the left-deep
//! tree. This module adds the natural bandwidth-*aware* ordering as an
//! extension: a greedy bottom-up pairing (Huffman-style) that repeatedly
//! combines the two partial results whose hosts enjoy the best mutual
//! bandwidth, producing a binary tree whose structure already reflects the
//! network. The ablation bench compares ordering-only, relocation-only,
//! and both.

use crate::bandwidth::BandwidthView;
use crate::ids::HostId;
use crate::placement::HostRoster;
use crate::tree::{CombinationTree, TreeError};

/// Builds a binary combination tree over the roster's servers by greedy
/// bandwidth-aware pairing: at every step, the two clusters whose
/// representative hosts have the highest bandwidth between them are
/// combined. The cluster's representative after a merge is the member
/// with the best bandwidth to the client (the side the result must
/// eventually travel toward).
///
/// Unknown links rank below all measured ones.
///
/// # Errors
///
/// Returns [`TreeError::TooFewServers`] if the roster has fewer than two
/// servers.
///
/// # Examples
///
/// ```
/// use wadc_plan::bandwidth::BwMatrix;
/// use wadc_plan::ordering::bandwidth_aware_binary;
/// use wadc_plan::placement::HostRoster;
///
/// let roster = HostRoster::one_host_per_server(4);
/// let bw = BwMatrix::from_fn(5, |a, b| (a.index() + b.index()) as f64 * 1000.0);
/// let tree = bandwidth_aware_binary(&roster, &bw)?;
/// assert_eq!(tree.server_count(), 4);
/// # Ok::<(), wadc_plan::tree::TreeError>(())
/// ```
pub fn bandwidth_aware_binary(
    roster: &HostRoster,
    view: impl BandwidthView + Copy,
) -> Result<CombinationTree, TreeError> {
    let n = roster.server_count();
    if n < 2 {
        return Err(TreeError::TooFewServers);
    }

    // Cluster = (representative host, ordered server list). Pairing order
    // determines the nesting; we rebuild a tree from the nesting via the
    // standard builder on a permutation... The CombinationTree builders
    // pair adjacent servers; instead we construct the pairing explicitly.
    #[derive(Clone)]
    struct Cluster {
        rep: HostId,
        merge: Merge,
    }
    #[derive(Clone)]
    enum Merge {
        Leaf(usize),
        Node(Box<Merge>, Box<Merge>),
    }

    let bw_or = |a: HostId, b: HostId| view.bandwidth(a, b).unwrap_or(0.0);
    let client = roster.client();

    let mut clusters: Vec<Cluster> = (0..n)
        .map(|s| Cluster {
            rep: roster.server_host(s),
            merge: Merge::Leaf(s),
        })
        .collect();

    while clusters.len() > 1 {
        // Find the best pair (i, j), i < j; deterministic tie-break on
        // indices keeps the construction reproducible.
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::NEG_INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let bw = bw_or(clusters[i].rep, clusters[j].rep);
                if bw > best {
                    best = bw;
                    bi = i;
                    bj = j;
                }
            }
        }
        let right = clusters.remove(bj);
        let left = clusters.remove(bi);
        let rep = if bw_or(left.rep, client) >= bw_or(right.rep, client) {
            left.rep
        } else {
            right.rep
        };
        clusters.push(Cluster {
            rep,
            merge: Merge::Node(Box::new(left.merge), Box::new(right.merge)),
        });
    }

    // Re-express the nesting as a CombinationTree by building it directly.
    fn build(merge: &Merge, b: &mut TreeAssembler) -> usize {
        match merge {
            Merge::Leaf(s) => b.leaf(*s),
            Merge::Node(l, r) => {
                let left = build(l, b);
                let right = build(r, b);
                b.node(left, right)
            }
        }
    }
    let mut asm = TreeAssembler::new(n);
    let top = build(&clusters[0].merge, &mut asm);
    Ok(asm.finish(top))
}

/// Assembles a [`CombinationTree`] from an arbitrary binary nesting of the
/// server leaves. This reuses the tree type's invariants (validated via
/// `check_invariants` in debug builds) while allowing orderings the two
/// standard builders cannot express.
struct TreeAssembler {
    nodes: Vec<crate::tree::TreeNode>,
    operator_nodes: Vec<crate::ids::NodeId>,
    server_nodes: Vec<crate::ids::NodeId>,
}

impl TreeAssembler {
    fn new(n_servers: usize) -> Self {
        TreeAssembler {
            nodes: Vec::with_capacity(2 * n_servers),
            operator_nodes: Vec::new(),
            server_nodes: vec![crate::ids::NodeId::new(0); n_servers],
        }
    }

    fn push(&mut self, node: crate::tree::TreeNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn leaf(&mut self, server: usize) -> usize {
        let idx = self.push(crate::tree::TreeNode {
            kind: crate::tree::NodeKind::Server(server),
            parent: None,
            children: Vec::new(),
            level: 0,
        });
        self.server_nodes[server] = crate::ids::NodeId::new(idx);
        idx
    }

    fn node(&mut self, left: usize, right: usize) -> usize {
        let level = [left, right]
            .iter()
            .map(|&c| match self.nodes[c].kind {
                crate::tree::NodeKind::Server(_) => 0,
                _ => self.nodes[c].level + 1,
            })
            .max()
            .expect("two children");
        let op = crate::ids::OperatorId::new(self.operator_nodes.len());
        let idx = self.push(crate::tree::TreeNode {
            kind: crate::tree::NodeKind::Operator(op),
            parent: None,
            children: vec![
                crate::ids::NodeId::new(left),
                crate::ids::NodeId::new(right),
            ],
            level,
        });
        self.operator_nodes.push(crate::ids::NodeId::new(idx));
        self.nodes[left].parent = Some(crate::ids::NodeId::new(idx));
        self.nodes[right].parent = Some(crate::ids::NodeId::new(idx));
        idx
    }

    fn finish(mut self, top: usize) -> CombinationTree {
        let level = self.nodes[top].level + 1;
        let root = self.push(crate::tree::TreeNode {
            kind: crate::tree::NodeKind::Client,
            parent: None,
            children: vec![crate::ids::NodeId::new(top)],
            level,
        });
        self.nodes[top].parent = Some(crate::ids::NodeId::new(root));
        CombinationTree::from_parts(
            self.nodes,
            crate::ids::NodeId::new(root),
            self.operator_nodes,
            self.server_nodes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BwMatrix;
    use crate::ids::NodeId;
    use crate::tree::NodeKind;

    fn h(i: usize) -> HostId {
        HostId::new(i)
    }

    #[test]
    fn produces_valid_trees_for_all_sizes() {
        for n in 2..=16 {
            let roster = HostRoster::one_host_per_server(n);
            let bw = BwMatrix::from_fn(n + 1, |a, b| {
                1000.0 + ((a.index() * 7 + b.index() * 13) % 50) as f64
            });
            let tree = bandwidth_aware_binary(&roster, &bw).unwrap();
            tree.check_invariants().unwrap();
            assert_eq!(tree.server_count(), n);
            assert_eq!(tree.operator_count(), n - 1);
        }
    }

    #[test]
    fn pairs_the_fastest_link_first() {
        // Servers 1 and 2 share a fast link; everyone else is slow. The
        // bottom of the tree must combine 1 and 2 directly.
        let roster = HostRoster::one_host_per_server(4);
        let mut bw = BwMatrix::from_fn(5, |_, _| 1_000.0);
        bw.set(h(1), h(2), 1_000_000.0);
        let tree = bandwidth_aware_binary(&roster, &bw).unwrap();
        // Find the operator whose children are exactly servers 1 and 2.
        let found = tree.operator_nodes().iter().any(|&opn| {
            let servers: Vec<usize> = tree
                .node(opn)
                .children
                .iter()
                .filter_map(|&c| match tree.node(c).kind {
                    NodeKind::Server(s) => Some(s),
                    _ => None,
                })
                .collect();
            servers.len() == 2 && servers.contains(&1) && servers.contains(&2)
        });
        assert!(found, "fast pair (1,2) should be combined first");
    }

    #[test]
    fn rejects_single_server() {
        let roster = HostRoster::one_host_per_server(1);
        let bw = BwMatrix::new(2);
        assert_eq!(
            bandwidth_aware_binary(&roster, &bw).err(),
            Some(TreeError::TooFewServers)
        );
    }

    #[test]
    fn deterministic_for_fixed_inputs() {
        let roster = HostRoster::one_host_per_server(8);
        let bw = BwMatrix::from_fn(9, |a, b| ((a.index() * 31 + b.index() * 17) % 97) as f64);
        let a = bandwidth_aware_binary(&roster, &bw).unwrap();
        let b = bandwidth_aware_binary(&roster, &bw).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_links_rank_last() {
        // Only (0,3) measured; it must be the first merge.
        let roster = HostRoster::one_host_per_server(4);
        let mut bw = BwMatrix::new(5);
        bw.set(h(0), h(3), 10.0);
        let tree = bandwidth_aware_binary(&roster, &bw).unwrap();
        let first_op = tree.operator_nodes()[0];
        let servers: Vec<usize> = tree
            .node(first_op)
            .children
            .iter()
            .filter_map(|&c| match tree.node(c).kind {
                NodeKind::Server(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(servers.contains(&0) && servers.contains(&3));
    }

    #[test]
    fn every_server_appears_exactly_once() {
        let roster = HostRoster::one_host_per_server(9);
        let bw = BwMatrix::from_fn(10, |a, b| (a.index() ^ b.index()) as f64 + 1.0);
        let tree = bandwidth_aware_binary(&roster, &bw).unwrap();
        let mut seen = vec![false; 9];
        for i in 0..tree.nodes().len() {
            if let NodeKind::Server(s) = tree.node(NodeId::new(i)).kind {
                assert!(!seen[s], "server {s} duplicated");
                seen[s] = true;
            }
        }
        assert!(seen.into_iter().all(|x| x));
    }
}
