//! Bandwidth knowledge for planning.
//!
//! The placement algorithms consume "information about network bandwidth
//! (represented as a sparse matrix)". [`BandwidthView`] is that interface;
//! [`BwMatrix`] is the concrete sparse symmetric matrix. Entries may be
//! missing — the monitoring system only knows pairs it has observed — and
//! the cost model decides what to assume for unknown links.

use crate::ids::HostId;

/// Read access to (estimated) pairwise bandwidth, bytes per second.
///
/// Implementations may be an oracle over the true simulated network, a
/// monitoring cache, or a static matrix. Bandwidth is treated as symmetric,
/// matching the paper's round-trip-probe methodology.
pub trait BandwidthView {
    /// Estimated bandwidth between two hosts, or `None` if unknown.
    /// `bandwidth(a, a)` is local and should be `None` (callers treat
    /// same-host edges as free).
    fn bandwidth(&self, a: HostId, b: HostId) -> Option<f64>;
}

impl<T: BandwidthView + ?Sized> BandwidthView for &T {
    fn bandwidth(&self, a: HostId, b: HostId) -> Option<f64> {
        (**self).bandwidth(a, b)
    }
}

/// A sparse symmetric bandwidth matrix.
///
/// # Examples
///
/// ```
/// use wadc_plan::bandwidth::{BandwidthView, BwMatrix};
/// use wadc_plan::ids::HostId;
///
/// let mut m = BwMatrix::new(3);
/// m.set(HostId::new(0), HostId::new(2), 50_000.0);
/// assert_eq!(m.bandwidth(HostId::new(2), HostId::new(0)), Some(50_000.0));
/// assert_eq!(m.bandwidth(HostId::new(0), HostId::new(1)), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BwMatrix {
    n: usize,
    vals: Vec<Option<f64>>,
}

impl BwMatrix {
    /// Creates an empty matrix over `n` hosts.
    pub fn new(n: usize) -> Self {
        BwMatrix {
            n,
            vals: vec![None; n * n],
        }
    }

    /// Builds a fully populated matrix from a function of host pairs.
    pub fn from_fn(n: usize, mut f: impl FnMut(HostId, HostId) -> f64) -> Self {
        let mut m = BwMatrix::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                let bw = f(HostId::new(a), HostId::new(b));
                m.set(HostId::new(a), HostId::new(b), bw);
            }
        }
        m
    }

    /// Number of hosts the matrix covers.
    pub fn host_count(&self) -> usize {
        self.n
    }

    /// Sets the (symmetric) bandwidth between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either host is out of range or `a == b`.
    pub fn set(&mut self, a: HostId, b: HostId, bytes_per_sec: f64) {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "host out of range"
        );
        assert_ne!(a, b, "no self-links");
        self.vals[a.index() * self.n + b.index()] = Some(bytes_per_sec);
        self.vals[b.index() * self.n + a.index()] = Some(bytes_per_sec);
    }

    /// Clears the entry for a pair.
    ///
    /// # Panics
    ///
    /// Panics if either host is out of range.
    pub fn clear(&mut self, a: HostId, b: HostId) {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "host out of range"
        );
        self.vals[a.index() * self.n + b.index()] = None;
        self.vals[b.index() * self.n + a.index()] = None;
    }

    /// Number of known (unordered) pairs.
    pub fn known_pairs(&self) -> usize {
        let mut k = 0;
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if self.vals[a * self.n + b].is_some() {
                    k += 1;
                }
            }
        }
        k
    }
}

impl BandwidthView for BwMatrix {
    fn bandwidth(&self, a: HostId, b: HostId) -> Option<f64> {
        if a == b || a.index() >= self.n || b.index() >= self.n {
            return None;
        }
        self.vals[a.index() * self.n + b.index()]
    }
}

/// A dense one-shot snapshot of another [`BandwidthView`].
///
/// Search loops query the same small host set thousands of times per
/// planner run; layered views (forecaster over cache over oracle probe)
/// pay a hash lookup or worse per query. A `DenseView` materialises every
/// ordered pair once up front, so each subsequent query is a single array
/// read. It stores both directions independently and therefore returns
/// exactly what the snapshotted view returned, asymmetries included.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseView {
    n: usize,
    vals: Vec<Option<f64>>,
}

impl Default for DenseView {
    /// An empty snapshot covering zero hosts; fill it with
    /// [`DenseView::snapshot_into`].
    fn default() -> Self {
        DenseView {
            n: 0,
            vals: Vec::new(),
        }
    }
}

impl DenseView {
    /// Captures `view` over hosts `0..n`.
    pub fn snapshot(n: usize, view: impl BandwidthView) -> Self {
        let mut dense = DenseView::default();
        dense.snapshot_into(n, view);
        dense
    }

    /// [`DenseView::snapshot`] in place, reusing the matrix's capacity.
    /// The refilled view is identical to a fresh snapshot.
    pub fn snapshot_into(&mut self, n: usize, view: impl BandwidthView) {
        self.n = n;
        self.vals.clear();
        self.vals.resize(n * n, None);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    self.vals[a * n + b] = view.bandwidth(HostId::new(a), HostId::new(b));
                }
            }
        }
    }

    /// Number of hosts the snapshot covers.
    pub fn host_count(&self) -> usize {
        self.n
    }
}

impl BandwidthView for DenseView {
    fn bandwidth(&self, a: HostId, b: HostId) -> Option<f64> {
        if a == b || a.index() >= self.n || b.index() >= self.n {
            return None;
        }
        self.vals[a.index() * self.n + b.index()]
    }
}

/// A [`BandwidthView`] with a set of hosts masked out: every edge
/// touching a masked host reads as unknown.
///
/// This is the planner's surviving-host subgraph after a crash: stale
/// measurements *through* a dead host must not inform placement, even
/// if the monitoring cache still remembers them. Masking alone does not
/// exclude a dead host from the placement search — the cost model
/// treats unknown bandwidth as "pessimistic but usable" — so the search
/// additionally skips masked hosts at candidate-enumeration time; the
/// view keeps the cost estimates honest for the hosts that remain.
#[derive(Debug, Clone)]
pub struct MaskedView<V> {
    inner: V,
    masked: Vec<bool>,
}

impl<V: BandwidthView> MaskedView<V> {
    /// Wraps `inner`, masking every host whose index is in `masked`
    /// (indices beyond `n_hosts` are ignored).
    pub fn new(inner: V, n_hosts: usize, masked: impl IntoIterator<Item = HostId>) -> Self {
        let mut mask = vec![false; n_hosts];
        for h in masked {
            if h.index() < n_hosts {
                mask[h.index()] = true;
            }
        }
        MaskedView {
            inner,
            masked: mask,
        }
    }

    /// Whether `host` is masked out.
    pub fn is_masked(&self, host: HostId) -> bool {
        self.masked.get(host.index()).copied().unwrap_or(false)
    }
}

impl<V: BandwidthView> BandwidthView for MaskedView<V> {
    fn bandwidth(&self, a: HostId, b: HostId) -> Option<f64> {
        if self.is_masked(a) || self.is_masked(b) {
            return None;
        }
        self.inner.bandwidth(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_set_get() {
        let mut m = BwMatrix::new(4);
        m.set(HostId::new(1), HostId::new(3), 100.0);
        assert_eq!(m.bandwidth(HostId::new(1), HostId::new(3)), Some(100.0));
        assert_eq!(m.bandwidth(HostId::new(3), HostId::new(1)), Some(100.0));
        assert_eq!(m.known_pairs(), 1);
    }

    #[test]
    fn self_link_is_none() {
        let m = BwMatrix::from_fn(3, |_, _| 1.0);
        assert_eq!(m.bandwidth(HostId::new(1), HostId::new(1)), None);
    }

    #[test]
    fn out_of_range_is_none() {
        let m = BwMatrix::new(2);
        assert_eq!(m.bandwidth(HostId::new(0), HostId::new(9)), None);
    }

    #[test]
    fn from_fn_fills_all_pairs() {
        let m = BwMatrix::from_fn(5, |a, b| (a.index() + b.index()) as f64);
        assert_eq!(m.known_pairs(), 10);
        assert_eq!(m.bandwidth(HostId::new(2), HostId::new(4)), Some(6.0));
    }

    #[test]
    fn clear_removes_both_directions() {
        let mut m = BwMatrix::from_fn(3, |_, _| 5.0);
        m.clear(HostId::new(0), HostId::new(1));
        assert_eq!(m.bandwidth(HostId::new(0), HostId::new(1)), None);
        assert_eq!(m.bandwidth(HostId::new(1), HostId::new(0)), None);
        assert_eq!(m.known_pairs(), 2);
    }

    #[test]
    #[should_panic(expected = "no self-links")]
    fn set_self_link_panics() {
        BwMatrix::new(2).set(HostId::new(0), HostId::new(0), 1.0);
    }

    #[test]
    fn dense_snapshot_matches_source_exactly() {
        let m = BwMatrix::from_fn(4, |a, b| (3 + a.index() * 5 + b.index()) as f64);
        let d = DenseView::snapshot(4, &m);
        assert_eq!(d.host_count(), 4);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(
                    d.bandwidth(HostId::new(a), HostId::new(b)),
                    m.bandwidth(HostId::new(a), HostId::new(b))
                );
            }
        }
        // Out of range behaves like any view.
        assert_eq!(d.bandwidth(HostId::new(0), HostId::new(9)), None);
    }

    #[test]
    fn dense_snapshot_preserves_asymmetry() {
        // A view that is (artificially) asymmetric must snapshot per
        // direction — the search only ever queries child→parent pairs.
        struct Asym;
        impl BandwidthView for Asym {
            fn bandwidth(&self, a: HostId, b: HostId) -> Option<f64> {
                (a != b).then(|| (a.index() * 10 + b.index()) as f64)
            }
        }
        let d = DenseView::snapshot(3, Asym);
        assert_eq!(d.bandwidth(HostId::new(1), HostId::new(2)), Some(12.0));
        assert_eq!(d.bandwidth(HostId::new(2), HostId::new(1)), Some(21.0));
    }

    #[test]
    fn masked_view_hides_every_edge_of_a_dead_host() {
        let m = BwMatrix::from_fn(4, |_, _| 100.0);
        let masked = MaskedView::new(&m, 4, [HostId::new(2)]);
        assert!(masked.is_masked(HostId::new(2)));
        assert!(!masked.is_masked(HostId::new(1)));
        assert_eq!(masked.bandwidth(HostId::new(0), HostId::new(2)), None);
        assert_eq!(masked.bandwidth(HostId::new(2), HostId::new(3)), None);
        assert_eq!(
            masked.bandwidth(HostId::new(0), HostId::new(1)),
            Some(100.0),
            "surviving edges pass through untouched"
        );
        // An empty mask is transparent.
        let clear = MaskedView::new(&m, 4, []);
        assert_eq!(clear.bandwidth(HostId::new(0), HostId::new(2)), Some(100.0));
        // Out-of-range mask entries are ignored, not a panic.
        let oob = MaskedView::new(&m, 4, [HostId::new(99)]);
        assert_eq!(oob.bandwidth(HostId::new(0), HostId::new(2)), Some(100.0));
    }

    #[test]
    fn view_through_reference() {
        fn takes_view(v: impl BandwidthView) -> Option<f64> {
            v.bandwidth(HostId::new(0), HostId::new(1))
        }
        let mut m = BwMatrix::new(2);
        m.set(HostId::new(0), HostId::new(1), 7.0);
        assert_eq!(takes_view(&m), Some(7.0));
    }
}
