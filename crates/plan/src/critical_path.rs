//! Critical-path analysis of a placed combination tree.
//!
//! "The execution time is governed by the length of the critical path of
//! the data-flow tree. Critical path is defined as the length of the
//! longest path from a server to the final destination (the client)." All
//! three placement algorithms iteratively shorten this path.
//!
//! For a *tree* the longest leaf-to-root path is computable in one
//! post-order pass (the paper mentions branch-and-bound, which its more
//! general representation needed; on a tree the exact computation is
//! linear, so nothing is lost by the direct algorithm).

use crate::bandwidth::BandwidthView;
use crate::cost::CostModel;
use crate::ids::{HostId, NodeId, OperatorId};
use crate::placement::{HostRoster, Placement};
use crate::tree::{CombinationTree, NodeKind};

/// The critical path of a placed tree: its estimated per-partition cost and
/// the nodes along it.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Estimated seconds per partition along the slowest path.
    pub cost: f64,
    /// Path node ids from the critical server leaf up to the client root.
    pub path: Vec<NodeId>,
}

impl CriticalPath {
    /// The operators on the critical path, bottom-up.
    pub fn operators(&self, tree: &CombinationTree) -> Vec<OperatorId> {
        self.path
            .iter()
            .filter_map(|&n| tree.operator_at(n))
            .collect()
    }
}

/// Computes the estimated cost of every node's subtree (seconds per
/// partition): the node's own processing plus the slowest
/// `edge + child-subtree` chain below it. Index by [`NodeId::index`].
pub fn subtree_costs(
    tree: &CombinationTree,
    roster: &HostRoster,
    placement: &Placement,
    view: impl BandwidthView,
    model: &CostModel,
) -> Vec<f64> {
    let mut cost = vec![0.0f64; tree.nodes().len()];
    for node_id in tree.postorder() {
        let node = tree.node(node_id);
        let here = placement.node_host(tree, roster, node_id);
        let slowest_input = node
            .children
            .iter()
            .map(|&c| {
                let child_host = placement.node_host(tree, roster, c);
                model.edge_cost(&view, child_host, here) + cost[c.index()]
            })
            .fold(0.0f64, f64::max);
        cost[node_id.index()] = own_cost(node.kind, model) + slowest_input;
    }
    cost
}

/// A node's own processing cost under the model: disk at servers,
/// composition at operators, nothing at the client.
#[inline]
fn own_cost(kind: NodeKind, model: &CostModel) -> f64 {
    match kind {
        NodeKind::Server(_) => model.disk_secs,
        NodeKind::Operator(_) => model.compute_secs,
        NodeKind::Client => 0.0,
    }
}

/// Computes the critical path of a placed tree under the cost model.
///
/// # Examples
///
/// ```
/// use wadc_plan::bandwidth::BwMatrix;
/// use wadc_plan::cost::CostModel;
/// use wadc_plan::critical_path::critical_path;
/// use wadc_plan::ids::HostId;
/// use wadc_plan::placement::{HostRoster, Placement};
/// use wadc_plan::tree::CombinationTree;
///
/// let tree = CombinationTree::complete_binary(4)?;
/// let roster = HostRoster::one_host_per_server(4);
/// let bw = BwMatrix::from_fn(5, |_, _| 64_000.0);
/// let p = Placement::download_all(&tree, &roster);
/// let cp = critical_path(&tree, &roster, &p, &bw, &CostModel::paper_defaults());
/// assert!(cp.cost > 0.0);
/// assert_eq!(*cp.path.last().unwrap(), tree.root());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn critical_path(
    tree: &CombinationTree,
    roster: &HostRoster,
    placement: &Placement,
    view: impl BandwidthView,
    model: &CostModel,
) -> CriticalPath {
    let cost = subtree_costs(tree, roster, placement, &view, model);
    // Walk down from the root following the most expensive input chain.
    let mut path_rev = vec![tree.root()];
    let mut cur = tree.root();
    loop {
        let node = tree.node(cur);
        if node.children.is_empty() {
            break;
        }
        let here = placement.node_host(tree, roster, cur);
        let next = node
            .children
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let ca = model.edge_cost(&view, placement.node_host(tree, roster, a), here)
                    + cost[a.index()];
                let cb = model.edge_cost(&view, placement.node_host(tree, roster, b), here)
                    + cost[b.index()];
                ca.partial_cmp(&cb).expect("costs are finite")
            })
            .expect("non-leaf has children");
        path_rev.push(next);
        cur = next;
    }
    path_rev.reverse();
    CriticalPath {
        cost: cost[tree.root().index()],
        path: path_rev,
    }
}

/// Cost of the whole placement (the critical-path length); a convenience
/// for search loops that do not need the path itself.
pub fn placement_cost(
    tree: &CombinationTree,
    roster: &HostRoster,
    placement: &Placement,
    view: impl BandwidthView,
    model: &CostModel,
) -> f64 {
    subtree_costs(tree, roster, placement, view, model)[tree.root().index()]
}

/// Per-host NIC occupancy per partition: the summed transfer time of every
/// remote tree edge incident on the host. Because every host has a single
/// half-duplex interface, the slowest host's occupancy lower-bounds the
/// per-partition time regardless of the path structure — this is exactly
/// the end-point congestion that makes download-all slow (all `n` streams
/// serialise at the client's NIC) and that the plain critical-path metric
/// cannot see.
pub fn nic_occupancy(
    tree: &CombinationTree,
    roster: &HostRoster,
    placement: &Placement,
    view: impl BandwidthView + Copy,
    model: &CostModel,
) -> Vec<f64> {
    let mut load = vec![0.0f64; roster.host_count()];
    for (i, node) in tree.nodes().iter().enumerate() {
        if let Some(parent) = node.parent {
            let from = placement.node_host(tree, roster, NodeId::new(i));
            let to = placement.node_host(tree, roster, parent);
            if from != to {
                let secs = model.edge_cost(view, from, to);
                load[from.index()] += secs;
                load[to.index()] += secs;
            }
        }
    }
    load
}

/// An analytic completion-time estimate for a full pipelined run, used by
/// the verification suite to cross-check the simulator against the cost
/// model on constant-bandwidth networks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineEstimate {
    /// Fill latency: the time for the first partition to traverse the
    /// placed tree (critical path, with each remote edge also paying a
    /// startup for the demand message that precedes the data).
    pub latency_secs: f64,
    /// Steady-state interval between successive partitions: the busiest
    /// resource's occupancy per partition (a host's NIC handles a demand
    /// and a data message per remote incident edge; its CPU/disk handle
    /// the processing of the nodes placed on it).
    pub interval_secs: f64,
}

impl PipelineEstimate {
    /// Estimated end-to-end seconds for `iterations` partitions:
    /// `latency + (iterations - 1) * interval`.
    pub fn total_secs(&self, iterations: u32) -> f64 {
        self.latency_secs + iterations.saturating_sub(1) as f64 * self.interval_secs
    }
}

/// Estimates the completion time of a pipelined run over a placed tree.
///
/// The model mirrors the simulator's structure without simulating it:
/// demand-driven execution sends a (startup-priced) demand down and a data
/// message up every remote edge once per partition, every host serialises
/// its transfers through a single NIC, and processing (disk at servers,
/// composition at operators) overlaps with communication. The estimate is
/// exact only in expectation — image sizes are random, demands carry
/// piggybacked gossip — so consumers compare against it with a tolerance.
pub fn pipeline_estimate(
    tree: &CombinationTree,
    roster: &HostRoster,
    placement: &Placement,
    view: impl BandwidthView + Copy,
    model: &CostModel,
) -> PipelineEstimate {
    // Fill latency: subtree_costs plus one demand startup per remote edge.
    let mut fill = vec![0.0f64; tree.nodes().len()];
    for node_id in tree.postorder() {
        let node = tree.node(node_id);
        let here = placement.node_host(tree, roster, node_id);
        let own = match node.kind {
            NodeKind::Server(_) => model.disk_secs,
            NodeKind::Operator(_) => model.compute_secs,
            NodeKind::Client => 0.0,
        };
        let slowest_input = node
            .children
            .iter()
            .map(|&c| {
                let child_host = placement.node_host(tree, roster, c);
                let demand = if child_host == here {
                    0.0
                } else {
                    model.startup_secs
                };
                demand + model.edge_cost(view, child_host, here) + fill[c.index()]
            })
            .fold(0.0f64, f64::max);
        fill[node_id.index()] = own + slowest_input;
    }
    let latency_secs = fill[tree.root().index()];

    // Steady-state interval: per-host NIC occupancy (demand + data per
    // remote incident edge) and per-host processing occupancy; NIC, CPU
    // and disk are separate resources, so a host's contribution is the
    // larger of the two, and the pipeline drains at the busiest host.
    let mut nic = vec![0.0f64; roster.host_count()];
    let mut processing = vec![0.0f64; roster.host_count()];
    for (i, node) in tree.nodes().iter().enumerate() {
        let here = placement.node_host(tree, roster, NodeId::new(i));
        processing[here.index()] += match node.kind {
            NodeKind::Server(_) => model.disk_secs,
            NodeKind::Operator(_) => model.compute_secs,
            NodeKind::Client => 0.0,
        };
        if let Some(parent) = node.parent {
            let to = placement.node_host(tree, roster, parent);
            if here != to {
                let secs = model.startup_secs + model.edge_cost(view, here, to);
                nic[here.index()] += secs;
                nic[to.index()] += secs;
            }
        }
    }
    let interval_secs = nic
        .iter()
        .zip(&processing)
        .map(|(&n, &p)| n.max(p))
        .fold(0.0f64, f64::max);
    PipelineEstimate {
        latency_secs,
        interval_secs,
    }
}

/// Contention-aware placement cost: the maximum of the critical-path
/// length and the busiest NIC's occupancy. An *extension* over the paper's
/// plain critical-path objective (see `DESIGN.md`); the ablation bench
/// quantifies the difference.
pub fn contended_placement_cost(
    tree: &CombinationTree,
    roster: &HostRoster,
    placement: &Placement,
    view: impl BandwidthView + Copy,
    model: &CostModel,
) -> f64 {
    let cp = placement_cost(tree, roster, placement, view, model);
    let nic = nic_occupancy(tree, roster, placement, view, model)
        .into_iter()
        .fold(0.0f64, f64::max);
    cp.max(nic)
}

/// An incremental evaluator of the critical-path objective.
///
/// [`subtree_costs`] makes every candidate evaluation O(nodes), with a
/// fresh allocation, a postorder traversal, and a `node_host` resolution
/// per node — and the search loops evaluate every (critical-path operator
/// × host) pair per iteration. But a node's subtree cost depends only on
/// hosts *within its subtree*, so moving one operator can only change the
/// costs on that operator's root-ward path. This evaluator caches the
/// subtree costs and a flat `Vec<HostId>`-indexed placement view, making
/// a candidate evaluation O(depth) with no allocation and no hashing.
///
/// Every arithmetic expression matches [`subtree_costs`] operation for
/// operation (same children order, same `f64::max` folds), so the costs it
/// returns are **bit-identical** to a full recompute — the search makes
/// exactly the decisions it made before, which the golden-digest
/// determinism gate requires.
#[derive(Debug, Clone)]
pub struct IncrementalCriticalPath<'a, V> {
    tree: &'a CombinationTree,
    view: V,
    model: &'a CostModel,
    /// Host of every tree node (servers and client resolved through the
    /// roster once, operators tracked across [`Self::apply_move`]).
    node_hosts: Vec<HostId>,
    /// Cached subtree cost of every node, always equal to what
    /// [`subtree_costs`] would return for the current placement.
    costs: Vec<f64>,
}

impl<'a, V: BandwidthView> IncrementalCriticalPath<'a, V> {
    /// Builds the evaluator for `placement`, computing the full subtree
    /// costs once.
    pub fn new(
        tree: &'a CombinationTree,
        roster: &HostRoster,
        placement: &Placement,
        view: V,
        model: &'a CostModel,
    ) -> Self {
        Self::new_in(tree, roster, placement, view, model, Vec::new(), Vec::new())
    }

    /// [`IncrementalCriticalPath::new`] reusing caller-provided buffers
    /// for the two per-node caches (contents are discarded, capacity is
    /// kept). Recover them with
    /// [`IncrementalCriticalPath::into_buffers`] when the search is done.
    pub fn new_in(
        tree: &'a CombinationTree,
        roster: &HostRoster,
        placement: &Placement,
        view: V,
        model: &'a CostModel,
        mut node_hosts: Vec<HostId>,
        mut costs: Vec<f64>,
    ) -> Self {
        node_hosts.clear();
        node_hosts.extend(
            (0..tree.nodes().len()).map(|i| placement.node_host(tree, roster, NodeId::new(i))),
        );
        costs.clear();
        costs.resize(tree.nodes().len(), 0.0);
        let mut eval = IncrementalCriticalPath {
            tree,
            view,
            model,
            node_hosts,
            costs,
        };
        for node_id in tree.postorder() {
            let here = eval.node_hosts[node_id.index()];
            eval.costs[node_id.index()] = eval.node_cost(node_id, here);
        }
        eval
    }

    /// Tears the evaluator down into its per-node cache buffers so a
    /// later [`IncrementalCriticalPath::new_in`] can reuse their capacity.
    pub fn into_buffers(self) -> (Vec<HostId>, Vec<f64>) {
        (self.node_hosts, self.costs)
    }

    /// Recomputes one node's subtree cost from its (cached) children,
    /// assuming the node itself sits on `here`. Mirrors the corresponding
    /// step of [`subtree_costs`] exactly.
    fn node_cost(&self, node_id: NodeId, here: HostId) -> f64 {
        let node = self.tree.node(node_id);
        let slowest_input = node
            .children
            .iter()
            .map(|&c| {
                let child_host = self.node_hosts[c.index()];
                self.model.edge_cost(&self.view, child_host, here) + self.costs[c.index()]
            })
            .fold(0.0f64, f64::max);
        own_cost(node.kind, self.model) + slowest_input
    }

    /// The critical-path cost of the current placement (the root's subtree
    /// cost), equal to [`placement_cost`].
    pub fn root_cost(&self) -> f64 {
        self.costs[self.tree.root().index()]
    }

    /// The cached subtree costs, indexable by [`NodeId::index`]; equal to
    /// [`subtree_costs`] for the current placement.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Host of every tree node under the current placement, indexable by
    /// [`NodeId::index`].
    pub fn node_hosts(&self) -> &[HostId] {
        &self.node_hosts
    }

    /// The root cost the placement would have if `op` moved to `host`,
    /// without committing the move: re-evaluates only the moved node and
    /// its ancestors, O(depth).
    pub fn cost_if_moved(&self, op: OperatorId, host: HostId) -> f64 {
        let moved = self.tree.operator_node(op);
        let mut cur = moved;
        let mut cur_cost = self.node_cost(moved, host);
        while let Some(parent) = self.tree.node(cur).parent {
            let here = self.node_hosts[parent.index()];
            let slowest_input = self
                .tree
                .node(parent)
                .children
                .iter()
                .map(|&c| {
                    let (child_host, child_cost) = if c == cur {
                        let h = if c == moved {
                            host
                        } else {
                            self.node_hosts[c.index()]
                        };
                        (h, cur_cost)
                    } else {
                        (self.node_hosts[c.index()], self.costs[c.index()])
                    };
                    self.model.edge_cost(&self.view, child_host, here) + child_cost
                })
                .fold(0.0f64, f64::max);
            cur_cost = own_cost(self.tree.node(parent).kind, self.model) + slowest_input;
            cur = parent;
        }
        cur_cost
    }

    /// Commits a move of `op` to `host`, updating the cached costs along
    /// the moved node's root-ward path.
    pub fn apply_move(&mut self, op: OperatorId, host: HostId) {
        let moved = self.tree.operator_node(op);
        self.node_hosts[moved.index()] = host;
        self.costs[moved.index()] = self.node_cost(moved, host);
        let mut cur = moved;
        while let Some(parent) = self.tree.node(cur).parent {
            let here = self.node_hosts[parent.index()];
            self.costs[parent.index()] = self.node_cost(parent, here);
            cur = parent;
        }
    }

    /// The operators on the current critical path, bottom-up, written into
    /// `out` (cleared first) so search loops can reuse the buffer. Follows
    /// the same walk — including `max_by`'s keep-the-last tie handling —
    /// as [`critical_path`], so the reported operators are identical.
    pub fn critical_operators(&self, out: &mut Vec<OperatorId>) {
        out.clear();
        let mut cur = self.tree.root();
        loop {
            if let Some(op) = self.tree.operator_at(cur) {
                out.push(op);
            }
            let node = self.tree.node(cur);
            if node.children.is_empty() {
                break;
            }
            let here = self.node_hosts[cur.index()];
            let next = node
                .children
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let ca = self
                        .model
                        .edge_cost(&self.view, self.node_hosts[a.index()], here)
                        + self.costs[a.index()];
                    let cb = self
                        .model
                        .edge_cost(&self.view, self.node_hosts[b.index()], here)
                        + self.costs[b.index()];
                    ca.partial_cmp(&cb).expect("costs are finite")
                })
                .expect("non-leaf has children");
            cur = next;
        }
        // The walk collected top-down; the search scans bottom-up.
        out.reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BwMatrix;
    use crate::ids::HostId;

    fn setup(n: usize) -> (CombinationTree, HostRoster, CostModel) {
        (
            CombinationTree::complete_binary(n).unwrap(),
            HostRoster::one_host_per_server(n),
            CostModel::paper_defaults(),
        )
    }

    #[test]
    fn path_runs_leaf_to_root() {
        let (tree, roster, model) = setup(8);
        let bw = BwMatrix::from_fn(9, |_, _| 50_000.0);
        let p = Placement::download_all(&tree, &roster);
        let cp = critical_path(&tree, &roster, &p, &bw, &model);
        assert!(matches!(tree.node(cp.path[0]).kind, NodeKind::Server(_)));
        assert_eq!(*cp.path.last().unwrap(), tree.root());
        // 8 servers: leaf, 3 operators, client = 5 nodes.
        assert_eq!(cp.path.len(), 5);
        assert_eq!(cp.operators(&tree).len(), 3);
    }

    #[test]
    fn critical_path_follows_slow_link() {
        let (tree, roster, model) = setup(4);
        // Server 2's link to the client is 10× slower than everyone else's.
        let slow = HostId::new(2);
        let bw = BwMatrix::from_fn(5, |a, b| {
            if a == slow || b == slow {
                5_000.0
            } else {
                500_000.0
            }
        });
        let p = Placement::download_all(&tree, &roster);
        let cp = critical_path(&tree, &roster, &p, &bw, &model);
        assert_eq!(tree.node(cp.path[0]).kind, NodeKind::Server(2));
    }

    #[test]
    fn cost_dominates_every_root_leaf_path() {
        let (tree, roster, model) = setup(8);
        // Irregular bandwidths.
        let bw = BwMatrix::from_fn(9, |a, b| 10_000.0 + (a.index() * 7 + b.index() * 13) as f64);
        let p = Placement::download_all(&tree, &roster);
        let cp = critical_path(&tree, &roster, &p, &bw, &model);
        // Recompute each leaf-to-root chain cost by hand; none may exceed cp.
        for &leaf in tree.server_nodes() {
            let mut cost = model.disk_secs;
            let mut cur = leaf;
            while let Some(parent) = tree.node(cur).parent {
                let from = p.node_host(&tree, &roster, cur);
                let to = p.node_host(&tree, &roster, parent);
                cost += model.edge_cost(&bw, from, to);
                cost += match tree.node(parent).kind {
                    NodeKind::Operator(_) => model.compute_secs,
                    _ => 0.0,
                };
                cur = parent;
            }
            assert!(
                cost <= cp.cost + 1e-9,
                "leaf path cost {cost} exceeds critical path {}",
                cp.cost
            );
        }
    }

    #[test]
    fn colocating_everything_leaves_only_server_edges() {
        let (tree, roster, model) = setup(2);
        let bw = BwMatrix::from_fn(3, |_, _| 131072.0); // 1 s transfers
        let p = Placement::download_all(&tree, &roster);
        let cp = critical_path(&tree, &roster, &p, &bw, &model);
        // disk + (startup + 1 s) edge + compute at client + free edge to client
        let expected = model.disk_secs + (0.05 + 1.0) + model.compute_secs;
        assert!((cp.cost - expected).abs() < 1e-9);
    }

    #[test]
    fn better_placement_routes_around_slow_link() {
        let (tree, roster, model) = setup(2);
        // Server 1's direct link to the client is terrible, but it can reach
        // server 0 quickly, and server 0 reaches the client at a decent rate.
        // Relocating the operator to host 0 routes around the bad link —
        // the paper's core phenomenon.
        let h0 = HostId::new(0);
        let h1 = HostId::new(1);
        let client = roster.client();
        let mut bw = BwMatrix::new(3);
        bw.set(h1, client, 2_000.0); // ~65 s per image
        bw.set(h0, h1, 1_000_000.0); // ~0.13 s per image
        bw.set(h0, client, 64_000.0); // ~2 s per image
        let downloaded = Placement::download_all(&tree, &roster);
        let mut pushed = downloaded.clone();
        pushed.set_site(OperatorId::new(0), h0);
        let c_down = placement_cost(&tree, &roster, &downloaded, &bw, &model);
        let c_push = placement_cost(&tree, &roster, &pushed, &bw, &model);
        assert!(
            c_push < c_down / 5.0,
            "pushed {c_push} should be far below download-all {c_down}"
        );
    }

    #[test]
    fn nic_occupancy_sees_download_all_congestion() {
        let (tree, roster, model) = setup(8);
        let bw = BwMatrix::from_fn(9, |_, _| 131_072.0); // ~1 s per image
        let p = Placement::download_all(&tree, &roster);
        let load = nic_occupancy(&tree, &roster, &p, &bw, &model);
        // The client receives 8 streams: ~8x the per-edge time; each
        // server sends one.
        let client_load = load[roster.client().index()];
        let server_load = load[0];
        assert!((client_load / server_load - 8.0).abs() < 1e-9);
        // The contended cost therefore exceeds the plain critical path.
        let cp = placement_cost(&tree, &roster, &p, &bw, &model);
        let contended = contended_placement_cost(&tree, &roster, &p, &bw, &model);
        assert!(contended > cp);
        assert!((contended - client_load).abs() < 1e-9);
    }

    #[test]
    fn distributing_operators_reduces_contended_cost() {
        let (tree, roster, model) = setup(8);
        let bw = BwMatrix::from_fn(9, |_, _| 131_072.0);
        let downloaded = Placement::download_all(&tree, &roster);
        // Spread level-0 operators onto their left-child server hosts.
        let mut spread = downloaded.clone();
        for i in 0..tree.operator_count() {
            let op = OperatorId::new(i);
            let node = tree.operator_node(op);
            if tree.node(node).level == 0 {
                let left = tree.node(node).children[0];
                spread.set_site(op, downloaded.node_host(&tree, &roster, left));
            }
        }
        let c_down = contended_placement_cost(&tree, &roster, &downloaded, &bw, &model);
        let c_spread = contended_placement_cost(&tree, &roster, &spread, &bw, &model);
        assert!(
            c_spread < c_down,
            "spreading operators should relieve the client NIC: {c_spread} vs {c_down}"
        );
    }

    #[test]
    fn colocated_placement_has_zero_intermediate_occupancy() {
        let (tree, roster, model) = setup(4);
        let bw = BwMatrix::from_fn(5, |_, _| 50_000.0);
        let p = Placement::download_all(&tree, &roster);
        let load = nic_occupancy(&tree, &roster, &p, &bw, &model);
        // Only server→client edges exist; inter-operator edges are local.
        let per_edge = model.edge_cost(&bw, wadc_helper_h(0), roster.client());
        assert!((load[roster.client().index()] - 4.0 * per_edge).abs() < 1e-9);
    }

    fn wadc_helper_h(i: usize) -> HostId {
        HostId::new(i)
    }

    #[test]
    fn pipeline_estimate_bounds_make_sense() {
        let (tree, roster, model) = setup(4);
        let bw = BwMatrix::from_fn(5, |_, _| 64_000.0);
        let p = Placement::download_all(&tree, &roster);
        let est = pipeline_estimate(&tree, &roster, &p, &bw, &model);
        // The fill latency dominates the plain critical path (every remote
        // edge pays an extra demand startup).
        let cp = placement_cost(&tree, &roster, &p, &bw, &model);
        assert!(est.latency_secs > cp);
        // Download-all: the client NIC carries all four server edges, so
        // the interval is 4x the per-edge time (demand startup + data).
        let per_edge = model.startup_secs + model.edge_cost(&bw, HostId::new(0), roster.client());
        assert!((est.interval_secs - 4.0 * per_edge).abs() < 1e-9);
        // Totals accumulate linearly in the iteration count.
        assert!((est.total_secs(1) - est.latency_secs).abs() < 1e-12);
        let d = est.total_secs(11) - est.total_secs(10);
        assert!((d - est.interval_secs).abs() < 1e-9);
    }

    #[test]
    fn pipeline_interval_can_be_compute_bound() {
        let (tree, roster, model) = setup(2);
        // Absurdly fast links: the operator's composition dominates.
        let bw = BwMatrix::from_fn(3, |_, _| 1e12);
        let p = Placement::download_all(&tree, &roster);
        let est = pipeline_estimate(&tree, &roster, &p, &bw, &model);
        assert!(est.interval_secs >= model.compute_secs);
    }

    #[test]
    fn incremental_probe_is_bit_identical_to_full_recompute() {
        // The evaluator must return *exactly* the f64 the full recompute
        // returns — not approximately — or search decisions (and hence the
        // golden digests) could drift. Exercise every (operator, host)
        // probe from several placements on binary and left-deep trees.
        for tree in [
            CombinationTree::complete_binary(8).unwrap(),
            CombinationTree::left_deep(6).unwrap(),
        ] {
            let n = tree.server_nodes().len();
            let roster = HostRoster::one_host_per_server(n);
            let model = CostModel::paper_defaults();
            let bw = BwMatrix::from_fn(roster.host_count(), |a, b| {
                3_000.0 + ((a.index() * 13 + b.index() * 7) % 53) as f64 * 4_000.0
            });
            let mut placement = Placement::download_all(&tree, &roster);
            for round in 0..4 {
                let eval = IncrementalCriticalPath::new(&tree, &roster, &placement, &bw, &model);
                assert_eq!(
                    eval.root_cost(),
                    placement_cost(&tree, &roster, &placement, &bw, &model)
                );
                let mut probe = placement.clone();
                for i in 0..tree.operator_count() {
                    let op = OperatorId::new(i);
                    let original = probe.site(op);
                    for host in roster.hosts() {
                        probe.set_site(op, host);
                        let full = placement_cost(&tree, &roster, &probe, &bw, &model);
                        assert_eq!(
                            eval.cost_if_moved(op, host),
                            full,
                            "probe {op}→{host} diverges from full recompute"
                        );
                    }
                    probe.set_site(op, original);
                }
                // Mutate the placement for the next round.
                let op = OperatorId::new(round % tree.operator_count());
                let host = HostId::new((round * 3 + 1) % roster.host_count());
                placement.set_site(op, host);
            }
        }
    }

    #[test]
    fn incremental_apply_matches_fresh_evaluator() {
        let (tree, roster, model) = setup(8);
        let bw = BwMatrix::from_fn(9, |a, b| {
            2_000.0 + ((a.index() * 41 + b.index() * 3) % 29) as f64 * 9_000.0
        });
        let mut placement = Placement::download_all(&tree, &roster);
        let mut eval = IncrementalCriticalPath::new(&tree, &roster, &placement, &bw, &model);
        for step in 0..12 {
            let op = OperatorId::new(step % tree.operator_count());
            let host = HostId::new((step * 5 + 2) % roster.host_count());
            placement.set_site(op, host);
            eval.apply_move(op, host);
            let fresh = IncrementalCriticalPath::new(&tree, &roster, &placement, &bw, &model);
            assert_eq!(eval.costs(), fresh.costs(), "stale cache after step {step}");
            assert_eq!(eval.node_hosts(), fresh.node_hosts());
            assert_eq!(
                eval.root_cost(),
                placement_cost(&tree, &roster, &placement, &bw, &model)
            );
        }
    }

    #[test]
    fn incremental_critical_operators_match_critical_path() {
        let (tree, roster, model) = setup(8);
        // Include ties (uniform bandwidth) to pin the tie-breaking walk.
        for bw in [
            BwMatrix::from_fn(9, |_, _| 64_000.0),
            BwMatrix::from_fn(9, |a, b| 10_000.0 + (a.index() * 7 + b.index() * 13) as f64),
        ] {
            let mut placement = Placement::download_all(&tree, &roster);
            placement.set_site(OperatorId::new(1), HostId::new(2));
            let eval = IncrementalCriticalPath::new(&tree, &roster, &placement, &bw, &model);
            let mut ops = Vec::new();
            eval.critical_operators(&mut ops);
            let cp = critical_path(&tree, &roster, &placement, &bw, &model);
            assert_eq!(ops, cp.operators(&tree));
        }
    }

    #[test]
    fn subtree_costs_monotone_up_the_tree() {
        let (tree, roster, model) = setup(8);
        let bw = BwMatrix::from_fn(9, |_, _| 64_000.0);
        let p = Placement::download_all(&tree, &roster);
        let costs = subtree_costs(&tree, &roster, &p, &bw, &model);
        for (i, node) in tree.nodes().iter().enumerate() {
            for &c in &node.children {
                assert!(costs[i] >= costs[c.index()]);
            }
        }
    }
}
