//! Placements: the assignment of combination operators to hosts.
//!
//! A [`Placement`] maps every operator of a combination tree to one of the
//! participating hosts. The [`HostRoster`] pins the fixed endpoints — which
//! host each server's data lives on, and which host is the client — so a
//! placement only has freedom over the operators, exactly as in the paper.

use crate::ids::{HostId, NodeId, OperatorId};
use crate::tree::{CombinationTree, NodeKind};

/// The fixed host assignment: one host per server (data is not replicated)
/// plus the client host.
///
/// In the paper's configurations each server is its own host and the client
/// is a ninth host; the roster also supports servers sharing hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRoster {
    n_hosts: usize,
    client: HostId,
    server_hosts: Vec<HostId>,
}

/// Errors from roster or placement construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A host id was out of range for the roster.
    UnknownHost(HostId),
    /// The placement's operator count disagrees with the tree's.
    WrongOperatorCount {
        /// Operators in the placement.
        got: usize,
        /// Operators in the tree.
        expected: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::UnknownHost(h) => write!(f, "host {h} is not in the roster"),
            PlacementError::WrongOperatorCount { got, expected } => {
                write!(f, "placement has {got} operators, tree has {expected}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

impl HostRoster {
    /// Creates a roster of `n_hosts`, with the client on `client` and each
    /// server `s` on `server_hosts[s]`.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::UnknownHost`] if any host index is out of
    /// range.
    pub fn new(
        n_hosts: usize,
        client: HostId,
        server_hosts: Vec<HostId>,
    ) -> Result<Self, PlacementError> {
        if client.index() >= n_hosts {
            return Err(PlacementError::UnknownHost(client));
        }
        for &h in &server_hosts {
            if h.index() >= n_hosts {
                return Err(PlacementError::UnknownHost(h));
            }
        }
        Ok(HostRoster {
            n_hosts,
            client,
            server_hosts,
        })
    }

    /// The paper's canonical layout: `n_servers` hosts carrying one server
    /// each (hosts `0..n_servers`) plus a distinct client host (the last
    /// host).
    pub fn one_host_per_server(n_servers: usize) -> Self {
        HostRoster {
            n_hosts: n_servers + 1,
            client: HostId::new(n_servers),
            server_hosts: (0..n_servers).map(HostId::new).collect(),
        }
    }

    /// Total number of participating hosts.
    pub fn host_count(&self) -> usize {
        self.n_hosts
    }

    /// The client's host.
    pub fn client(&self) -> HostId {
        self.client
    }

    /// The host carrying server `s`'s data.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn server_host(&self, s: usize) -> HostId {
        self.server_hosts[s]
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.server_hosts.len()
    }

    /// Iterator over all host ids.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.n_hosts).map(HostId::new)
    }
}

/// An assignment of every operator to a host.
///
/// # Examples
///
/// ```
/// use wadc_plan::ids::{HostId, OperatorId};
/// use wadc_plan::placement::{HostRoster, Placement};
/// use wadc_plan::tree::CombinationTree;
///
/// let tree = CombinationTree::complete_binary(4)?;
/// let roster = HostRoster::one_host_per_server(4);
/// // The paper's base case: every operator at the client ("download-all").
/// let p = Placement::download_all(&tree, &roster);
/// assert_eq!(p.site(OperatorId::new(0)), roster.client());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    sites: Vec<HostId>,
}

impl Placement {
    /// Places every operator of `tree` at `host`.
    pub fn all_at(tree: &CombinationTree, host: HostId) -> Self {
        Placement {
            sites: vec![host; tree.operator_count()],
        }
    }

    /// The "download-all" placement: all operators at the client. This is
    /// "currently the dominant mode of combining data over wide-area
    /// networks" and the paper's base case.
    pub fn download_all(tree: &CombinationTree, roster: &HostRoster) -> Self {
        Placement::all_at(tree, roster.client())
    }

    /// Creates a placement from explicit per-operator sites.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::WrongOperatorCount`] if the site count
    /// differs from the tree's operator count, or
    /// [`PlacementError::UnknownHost`] if a site is outside the roster.
    pub fn from_sites(
        tree: &CombinationTree,
        roster: &HostRoster,
        sites: Vec<HostId>,
    ) -> Result<Self, PlacementError> {
        if sites.len() != tree.operator_count() {
            return Err(PlacementError::WrongOperatorCount {
                got: sites.len(),
                expected: tree.operator_count(),
            });
        }
        for &h in &sites {
            if h.index() >= roster.host_count() {
                return Err(PlacementError::UnknownHost(h));
            }
        }
        Ok(Placement { sites })
    }

    /// Host of an operator.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn site(&self, op: OperatorId) -> HostId {
        self.sites[op.index()]
    }

    /// Moves an operator to a new host.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn set_site(&mut self, op: OperatorId, host: HostId) {
        self.sites[op.index()] = host;
    }

    /// Number of operators covered.
    pub fn operator_count(&self) -> usize {
        self.sites.len()
    }

    /// Per-operator sites, indexable by [`OperatorId::index`].
    pub fn sites(&self) -> &[HostId] {
        &self.sites
    }

    /// The host of an arbitrary tree node under this placement: servers and
    /// the client resolve through the roster, operators through the
    /// placement.
    pub fn node_host(&self, tree: &CombinationTree, roster: &HostRoster, node: NodeId) -> HostId {
        match tree.node(node).kind {
            NodeKind::Server(s) => roster.server_host(s),
            NodeKind::Operator(op) => self.site(op),
            NodeKind::Client => roster.client(),
        }
    }

    /// Set of operators whose sites differ between `self` and `other`.
    pub fn diff(&self, other: &Placement) -> Vec<OperatorId> {
        self.sites
            .iter()
            .zip(&other.sites)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| OperatorId::new(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CombinationTree, HostRoster) {
        (
            CombinationTree::complete_binary(4).unwrap(),
            HostRoster::one_host_per_server(4),
        )
    }

    #[test]
    fn canonical_roster_layout() {
        let r = HostRoster::one_host_per_server(8);
        assert_eq!(r.host_count(), 9);
        assert_eq!(r.client(), HostId::new(8));
        assert_eq!(r.server_host(0), HostId::new(0));
        assert_eq!(r.server_count(), 8);
        assert_eq!(r.hosts().count(), 9);
    }

    #[test]
    fn roster_validates_hosts() {
        assert_eq!(
            HostRoster::new(2, HostId::new(5), vec![HostId::new(0)]),
            Err(PlacementError::UnknownHost(HostId::new(5)))
        );
        assert_eq!(
            HostRoster::new(2, HostId::new(1), vec![HostId::new(3)]),
            Err(PlacementError::UnknownHost(HostId::new(3)))
        );
    }

    #[test]
    fn download_all_puts_everything_at_client() {
        let (tree, roster) = setup();
        let p = Placement::download_all(&tree, &roster);
        for i in 0..tree.operator_count() {
            assert_eq!(p.site(OperatorId::new(i)), roster.client());
        }
    }

    #[test]
    fn from_sites_validates() {
        let (tree, roster) = setup();
        assert!(matches!(
            Placement::from_sites(&tree, &roster, vec![HostId::new(0)]),
            Err(PlacementError::WrongOperatorCount {
                got: 1,
                expected: 3
            })
        ));
        assert_eq!(
            Placement::from_sites(&tree, &roster, vec![HostId::new(99); 3]),
            Err(PlacementError::UnknownHost(HostId::new(99)))
        );
    }

    #[test]
    fn node_host_resolves_all_kinds() {
        let (tree, roster) = setup();
        let mut p = Placement::download_all(&tree, &roster);
        p.set_site(OperatorId::new(0), HostId::new(1));
        assert_eq!(
            p.node_host(&tree, &roster, tree.server_nodes()[2]),
            HostId::new(2)
        );
        assert_eq!(
            p.node_host(&tree, &roster, tree.operator_node(OperatorId::new(0))),
            HostId::new(1)
        );
        assert_eq!(p.node_host(&tree, &roster, tree.root()), roster.client());
    }

    #[test]
    fn diff_lists_moved_operators() {
        let (tree, roster) = setup();
        let a = Placement::download_all(&tree, &roster);
        let mut b = a.clone();
        assert!(a.diff(&b).is_empty());
        b.set_site(OperatorId::new(1), HostId::new(0));
        b.set_site(OperatorId::new(2), HostId::new(3));
        assert_eq!(a.diff(&b), vec![OperatorId::new(1), OperatorId::new(2)]);
    }
}
