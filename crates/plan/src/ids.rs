//! Identifier newtypes shared across the workspace.
//!
//! Distinct newtypes keep hosts, tree nodes and operators from being mixed
//! up at compile time: a [`HostId`] names a machine participating in the
//! computation, a [`NodeId`] names a node of the combination tree, and an
//! [`OperatorId`] names a combination operator (an internal tree node) —
//! the unit the placement algorithms move between hosts.

use std::fmt;

/// A participating host (a server machine or the client machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct HostId(usize);

impl HostId {
    /// Creates a host id from an index.
    pub const fn new(index: usize) -> Self {
        HostId(index)
    }

    /// The underlying index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A node of the combination tree (server leaf, operator, or client root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from an index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The underlying index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A combination operator: an internal node of the tree, and the unit of
/// relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct OperatorId(usize);

impl OperatorId {
    /// Creates an operator id from an index.
    pub const fn new(index: usize) -> Self {
        OperatorId(index)
    }

    /// The underlying index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        assert_eq!(HostId::new(3).index(), 3);
        assert_eq!(NodeId::new(7).index(), 7);
        assert_eq!(OperatorId::new(0).index(), 0);
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(HostId::new(2).to_string(), "h2");
        assert_eq!(NodeId::new(2).to_string(), "n2");
        assert_eq!(OperatorId::new(2).to_string(), "op2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(HostId::new(1) < HostId::new(2));
        assert!(OperatorId::new(0) < OperatorId::new(5));
    }
}
