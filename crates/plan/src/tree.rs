//! Combination trees.
//!
//! The order of combination operations is "represented as a data-flow tree"
//! with "the servers as the leaves, combination operators as internal nodes
//! and the client as the root". This module provides the tree structure and
//! the two orderings the paper studies: the **complete binary tree**
//! (maximally bushy) and the **left-deep tree** (linear, the shape of
//! classic database query plans — Figure 5).

use crate::ids::{NodeId, OperatorId};

/// What a tree node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A data server — a leaf. The payload is the server index
    /// (0-based, dense).
    Server(usize),
    /// A combination operator — an internal node, the unit of relocation.
    Operator(OperatorId),
    /// The client — the root, the final destination of combined data.
    Client,
}

/// One node of a combination tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// What the node is.
    pub kind: NodeKind,
    /// Parent node (`None` only for the client root).
    pub parent: Option<NodeId>,
    /// Child nodes (producers). Empty for servers; exactly one for the
    /// client; two for binary combination operators.
    pub children: Vec<NodeId>,
    /// Operator level for epoch staggering: operators whose producers are
    /// all servers are level 0; a parent operator is one level above its
    /// highest child. Servers are level 0 as well (unused); the client is
    /// one above the top operator.
    pub level: usize,
}

/// Errors from tree construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// Fewer than two servers were requested; combination needs at least two.
    TooFewServers,
    /// [`TreeShape::Custom`] trees cannot be built from a shape alone; use
    /// a dedicated constructor such as
    /// [`crate::ordering::bandwidth_aware_binary`].
    CustomShape,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::TooFewServers => write!(f, "a combination tree needs at least two servers"),
            TreeError::CustomShape => {
                write!(f, "custom-shaped trees need an explicit constructor")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// The shape of the combination ordering, as compared in the paper's
/// Figure 10 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TreeShape {
    /// Maximally bushy: pairs combined in a balanced binary tree. The
    /// paper's default and the shape that adapts best.
    #[default]
    CompleteBinary,
    /// Linear: each operator combines the previous result with the next
    /// server, as in database left-deep query plans.
    LeftDeep,
    /// A tree built by a dedicated constructor (e.g. the bandwidth-aware
    /// ordering in [`crate::ordering`]) rather than from the shape alone.
    Custom,
}

/// A data-flow combination tree: server leaves, binary combination
/// operators, client root.
///
/// # Examples
///
/// ```
/// use wadc_plan::tree::{CombinationTree, TreeShape};
///
/// let t = CombinationTree::build(TreeShape::CompleteBinary, 8)?;
/// assert_eq!(t.server_count(), 8);
/// assert_eq!(t.operator_count(), 7); // n - 1 binary operators
/// assert_eq!(t.depth(), 3); // three operator levels for 8 servers
/// # Ok::<(), wadc_plan::tree::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinationTree {
    nodes: Vec<TreeNode>,
    root: NodeId,
    operator_nodes: Vec<NodeId>,
    server_nodes: Vec<NodeId>,
    shape: TreeShape,
}

impl CombinationTree {
    /// Builds a combination tree of the given shape over `n_servers`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::TooFewServers`] if `n_servers < 2`.
    pub fn build(shape: TreeShape, n_servers: usize) -> Result<Self, TreeError> {
        if n_servers < 2 {
            return Err(TreeError::TooFewServers);
        }
        let mut b = Builder::new(n_servers);
        let top = match shape {
            TreeShape::Custom => return Err(TreeError::CustomShape),
            TreeShape::CompleteBinary => b.balanced(0, n_servers),
            TreeShape::LeftDeep => {
                let mut acc = b.server(0);
                for s in 1..n_servers {
                    let right = b.server(s);
                    acc = b.operator(acc, right);
                }
                acc
            }
        };
        Ok(b.finish(top, shape))
    }

    /// Convenience: a complete binary tree over `n_servers`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::TooFewServers`] if `n_servers < 2`.
    pub fn complete_binary(n_servers: usize) -> Result<Self, TreeError> {
        Self::build(TreeShape::CompleteBinary, n_servers)
    }

    /// Convenience: a left-deep tree over `n_servers`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::TooFewServers`] if `n_servers < 2`.
    pub fn left_deep(n_servers: usize) -> Result<Self, TreeError> {
        Self::build(TreeShape::LeftDeep, n_servers)
    }

    /// The shape this tree was built with.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// The client root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this tree.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id.index()]
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of server leaves.
    pub fn server_count(&self) -> usize {
        self.server_nodes.len()
    }

    /// Number of combination operators (always `server_count() - 1`).
    pub fn operator_count(&self) -> usize {
        self.operator_nodes.len()
    }

    /// Node ids of the server leaves, ordered by server index.
    pub fn server_nodes(&self) -> &[NodeId] {
        &self.server_nodes
    }

    /// Node ids of the operators, ordered by [`OperatorId`].
    pub fn operator_nodes(&self) -> &[NodeId] {
        &self.operator_nodes
    }

    /// The node of an operator.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn operator_node(&self, op: OperatorId) -> NodeId {
        self.operator_nodes[op.index()]
    }

    /// The operator at the given node, or `None` if the node is not an
    /// operator.
    pub fn operator_at(&self, id: NodeId) -> Option<OperatorId> {
        match self.node(id).kind {
            NodeKind::Operator(op) => Some(op),
            _ => None,
        }
    }

    /// The operator feeding the client (the top of the operator tree).
    pub fn top_operator(&self) -> OperatorId {
        let top = self.node(self.root).children[0];
        self.operator_at(top)
            .expect("client's child is always an operator for n ≥ 2 servers")
    }

    /// Number of operator levels (1 for two servers; `log2 n` for a
    /// complete binary tree; `n - 1` for a left-deep tree).
    pub fn depth(&self) -> usize {
        self.operator_nodes
            .iter()
            .map(|&n| self.node(n).level + 1)
            .max()
            .unwrap_or(0)
    }

    /// Level of an operator (0 = producers are all servers).
    pub fn operator_level(&self, op: OperatorId) -> usize {
        self.node(self.operator_node(op)).level
    }

    /// Nodes in post-order (children before parents), ending at the root.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if expanded {
                out.push(n);
            } else {
                stack.push((n, true));
                for &c in self.node(n).children.iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        out
    }

    /// Validates internal structural invariants; used by tests and
    /// debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.server_count();
        if self.operator_count() != n - 1 {
            return Err(format!(
                "expected {} operators for {n} servers, found {}",
                n - 1,
                self.operator_count()
            ));
        }
        let root_node = self.node(self.root);
        if root_node.kind != NodeKind::Client || root_node.parent.is_some() {
            return Err("root must be the parentless client".into());
        }
        if root_node.children.len() != 1 {
            return Err("client must consume exactly one operator".into());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId::new(i);
            match node.kind {
                NodeKind::Server(_) if !node.children.is_empty() => {
                    return Err(format!("server {id} has children"));
                }
                NodeKind::Operator(_) if node.children.len() != 2 => {
                    return Err(format!("operator node {id} is not binary"));
                }
                _ => {}
            }
            for &c in &node.children {
                if self.node(c).parent != Some(id) {
                    return Err(format!("parent link of {c} does not match {id}"));
                }
            }
        }
        Ok(())
    }
}

impl CombinationTree {
    /// Assembles a tree from raw parts (used by custom-ordering
    /// constructors in [`crate::ordering`]). The result has shape
    /// [`TreeShape::Custom`].
    pub(crate) fn from_parts(
        nodes: Vec<TreeNode>,
        root: NodeId,
        operator_nodes: Vec<NodeId>,
        server_nodes: Vec<NodeId>,
    ) -> CombinationTree {
        let tree = CombinationTree {
            nodes,
            root,
            operator_nodes,
            server_nodes,
            shape: TreeShape::Custom,
        };
        debug_assert_eq!(tree.check_invariants(), Ok(()));
        tree
    }
}

struct Builder {
    nodes: Vec<TreeNode>,
    operator_nodes: Vec<NodeId>,
    server_nodes: Vec<NodeId>,
    made_servers: usize,
}

impl Builder {
    fn new(n_servers: usize) -> Self {
        Builder {
            nodes: Vec::with_capacity(2 * n_servers),
            operator_nodes: Vec::new(),
            server_nodes: vec![NodeId::new(0); n_servers],
            made_servers: 0,
        }
    }

    fn push(&mut self, node: TreeNode) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(node);
        id
    }

    fn server(&mut self, index: usize) -> NodeId {
        let id = self.push(TreeNode {
            kind: NodeKind::Server(index),
            parent: None,
            children: Vec::new(),
            level: 0,
        });
        self.server_nodes[index] = id;
        self.made_servers += 1;
        id
    }

    fn operator(&mut self, left: NodeId, right: NodeId) -> NodeId {
        let level = [left, right]
            .iter()
            .map(|&c| match self.nodes[c.index()].kind {
                NodeKind::Server(_) => 0,
                _ => self.nodes[c.index()].level + 1,
            })
            .max()
            .expect("two children");
        let op = OperatorId::new(self.operator_nodes.len());
        let id = self.push(TreeNode {
            kind: NodeKind::Operator(op),
            parent: None,
            children: vec![left, right],
            level,
        });
        self.operator_nodes.push(id);
        self.nodes[left.index()].parent = Some(id);
        self.nodes[right.index()].parent = Some(id);
        id
    }

    /// Balanced binary combination over servers `[lo, lo + len)`.
    fn balanced(&mut self, lo: usize, len: usize) -> NodeId {
        if len == 1 {
            return self.server(lo);
        }
        let half = len / 2;
        let left = self.balanced(lo, len - half);
        let right = self.balanced(lo + (len - half), half);
        self.operator(left, right)
    }

    fn finish(mut self, top: NodeId, shape: TreeShape) -> CombinationTree {
        let level = self.nodes[top.index()].level + 1;
        let root = self.push(TreeNode {
            kind: NodeKind::Client,
            parent: None,
            children: vec![top],
            level,
        });
        self.nodes[top.index()].parent = Some(root);
        let tree = CombinationTree {
            nodes: self.nodes,
            root,
            operator_nodes: self.operator_nodes,
            server_nodes: self.server_nodes,
            shape,
        };
        debug_assert_eq!(tree.check_invariants(), Ok(()));
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_tree_shape() {
        for n in 2..=32 {
            let t = CombinationTree::complete_binary(n).unwrap();
            assert_eq!(t.server_count(), n);
            assert_eq!(t.operator_count(), n - 1);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn left_deep_shape() {
        for n in 2..=16 {
            let t = CombinationTree::left_deep(n).unwrap();
            assert_eq!(t.operator_count(), n - 1);
            assert_eq!(t.depth(), n - 1, "left-deep depth is linear");
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn binary_depth_is_logarithmic() {
        assert_eq!(CombinationTree::complete_binary(2).unwrap().depth(), 1);
        assert_eq!(CombinationTree::complete_binary(4).unwrap().depth(), 2);
        assert_eq!(CombinationTree::complete_binary(8).unwrap().depth(), 3);
        assert_eq!(CombinationTree::complete_binary(32).unwrap().depth(), 5);
        // Non-powers of two stay within ceil(log2 n).
        assert_eq!(CombinationTree::complete_binary(6).unwrap().depth(), 3);
    }

    #[test]
    fn too_few_servers_rejected() {
        assert_eq!(
            CombinationTree::complete_binary(1),
            Err(TreeError::TooFewServers)
        );
        assert_eq!(CombinationTree::left_deep(0), Err(TreeError::TooFewServers));
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = CombinationTree::complete_binary(4).unwrap();
        let order = t.postorder();
        assert_eq!(order.len(), t.nodes().len());
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for (i, node) in t.nodes().iter().enumerate() {
            for &c in &node.children {
                assert!(pos(c) < pos(NodeId::new(i)));
            }
        }
        assert_eq!(*order.last().unwrap(), t.root());
    }

    #[test]
    fn top_operator_feeds_client() {
        let t = CombinationTree::complete_binary(8).unwrap();
        let top = t.top_operator();
        let top_node = t.operator_node(top);
        assert_eq!(t.node(top_node).parent, Some(t.root()));
    }

    #[test]
    fn levels_stagger_bottom_up() {
        let t = CombinationTree::complete_binary(8).unwrap();
        let mut level_counts = vec![0usize; t.depth()];
        for op in 0..t.operator_count() {
            level_counts[t.operator_level(OperatorId::new(op))] += 1;
        }
        assert_eq!(level_counts, vec![4, 2, 1]);
    }

    #[test]
    fn left_deep_levels_are_distinct() {
        let t = CombinationTree::left_deep(5).unwrap();
        let mut levels: Vec<usize> = (0..t.operator_count())
            .map(|i| t.operator_level(OperatorId::new(i)))
            .collect();
        levels.sort_unstable();
        assert_eq!(levels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn server_nodes_ordered_by_index() {
        let t = CombinationTree::complete_binary(8).unwrap();
        for (i, &n) in t.server_nodes().iter().enumerate() {
            assert_eq!(t.node(n).kind, NodeKind::Server(i));
        }
    }

    #[test]
    fn operator_at_distinguishes_kinds() {
        let t = CombinationTree::complete_binary(2).unwrap();
        assert!(t.operator_at(t.root()).is_none());
        assert!(t.operator_at(t.server_nodes()[0]).is_none());
        assert!(t.operator_at(t.operator_nodes()[0]).is_some());
    }
}
