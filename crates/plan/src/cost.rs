//! The planning cost model.
//!
//! Converts an edge of the placed data-flow tree into estimated seconds:
//! `startup + bytes / bandwidth` for a remote edge, zero for a co-located
//! edge, plus per-node processing costs (disk read at servers, composition
//! at operators). The constants default to the paper's simulation
//! parameters: 50 ms message startup, 3 MB/s disk, 7 µs/pixel composition,
//! 128 KB expected images.

use crate::bandwidth::BandwidthView;
use crate::ids::HostId;

/// Expected image size used for planning, bytes (the paper's measured mean
/// for hurricane-imagery web sites).
pub const DEFAULT_IMAGE_BYTES: f64 = 128.0 * 1024.0;

/// Cost constants for evaluating candidate placements.
///
/// # Examples
///
/// ```
/// use wadc_plan::cost::CostModel;
/// use wadc_plan::bandwidth::BwMatrix;
/// use wadc_plan::ids::HostId;
///
/// let model = CostModel::paper_defaults();
/// let mut bw = BwMatrix::new(2);
/// bw.set(HostId::new(0), HostId::new(1), 64.0 * 1024.0);
/// // 50 ms startup + 128 KB at 64 KB/s = 2.05 s.
/// let c = model.edge_cost(&bw, HostId::new(0), HostId::new(1));
/// assert!((c - 2.05).abs() < 1e-9);
/// assert_eq!(model.edge_cost(&bw, HostId::new(1), HostId::new(1)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Per-message startup cost, seconds (paper: 50 ms).
    pub startup_secs: f64,
    /// Expected bytes shipped across each tree edge per partition
    /// (paper: mean image size, 128 KB).
    pub edge_bytes: f64,
    /// Assumed bandwidth for links with no measurement, bytes/sec. Chosen
    /// pessimistically so the search avoids unmeasured links unless a
    /// measured one is clearly worse.
    pub unknown_bandwidth: f64,
    /// Composition cost per operator per partition, seconds
    /// (paper: 7 µs/pixel × ~128 K pixels ≈ 0.92 s).
    pub compute_secs: f64,
    /// Disk read per server per partition, seconds
    /// (paper: 128 KB at 3 MB/s ≈ 0.042 s).
    pub disk_secs: f64,
}

impl CostModel {
    /// The paper's simulation constants.
    pub fn paper_defaults() -> Self {
        CostModel::for_image_bytes(DEFAULT_IMAGE_BYTES)
    }

    /// The paper's constants scaled to a different expected image size —
    /// keeps the planner's size estimates consistent with a non-default
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not finite and positive.
    pub fn for_image_bytes(bytes: f64) -> Self {
        assert!(
            bytes.is_finite() && bytes > 0.0,
            "expected image size must be finite and positive"
        );
        CostModel {
            startup_secs: 0.050,
            edge_bytes: bytes,
            unknown_bandwidth: 8.0 * 1024.0,
            compute_secs: 7e-6 * bytes, // one byte per pixel
            disk_secs: bytes / (3.0 * 1024.0 * 1024.0),
        }
    }

    /// Estimated seconds to ship one partition from `from` to `to`:
    /// zero when co-located, otherwise startup plus transfer at the
    /// estimated (or assumed) bandwidth.
    pub fn edge_cost(&self, view: impl BandwidthView, from: HostId, to: HostId) -> f64 {
        if from == to {
            return 0.0;
        }
        let bw = view
            .bandwidth(from, to)
            .unwrap_or(self.unknown_bandwidth)
            .max(1.0);
        self.startup_secs + self.edge_bytes / bw
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BwMatrix;

    #[test]
    fn paper_defaults_match_constants() {
        let m = CostModel::paper_defaults();
        assert_eq!(m.startup_secs, 0.05);
        assert_eq!(m.edge_bytes, 131072.0);
        assert!((m.compute_secs - 0.917504).abs() < 1e-9);
        assert!((m.disk_secs - 0.0416666).abs() < 1e-6);
    }

    #[test]
    fn colocated_edge_is_free() {
        let m = CostModel::paper_defaults();
        let bw = BwMatrix::new(3);
        assert_eq!(m.edge_cost(&bw, HostId::new(2), HostId::new(2)), 0.0);
    }

    #[test]
    fn unknown_link_uses_pessimistic_default() {
        let m = CostModel::paper_defaults();
        let bw = BwMatrix::new(3);
        let c = m.edge_cost(&bw, HostId::new(0), HostId::new(1));
        assert!((c - (0.05 + 131072.0 / 8192.0)).abs() < 1e-9);
    }

    #[test]
    fn faster_links_cost_less() {
        let m = CostModel::paper_defaults();
        let mut bw = BwMatrix::new(3);
        bw.set(HostId::new(0), HostId::new(1), 10_000.0);
        bw.set(HostId::new(0), HostId::new(2), 100_000.0);
        assert!(
            m.edge_cost(&bw, HostId::new(0), HostId::new(2))
                < m.edge_cost(&bw, HostId::new(0), HostId::new(1))
        );
    }

    #[test]
    fn degenerate_bandwidth_is_clamped() {
        let m = CostModel::paper_defaults();
        let mut bw = BwMatrix::new(2);
        bw.set(HostId::new(0), HostId::new(1), 1e-12);
        let c = m.edge_cost(&bw, HostId::new(0), HostId::new(1));
        assert!(c.is_finite());
    }
}
