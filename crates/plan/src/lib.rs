//! # wadc-plan — combination plans and their cost analysis
//!
//! The vocabulary of the paper's planning problem:
//!
//! - [`ids`] — typed identifiers for hosts, tree nodes and operators,
//! - [`tree::CombinationTree`] — the data-flow tree (complete-binary or
//!   left-deep ordering),
//! - [`placement::Placement`] — the assignment of operators to hosts, with
//!   the "download-all" base case,
//! - [`bandwidth`] — the sparse bandwidth matrix the algorithms consume,
//! - [`cost::CostModel`] — the paper's cost constants (50 ms startup,
//!   3 MB/s disk, 7 µs/pixel composition, 128 KB images),
//! - [`mod@critical_path`] — the longest server-to-client path that all three
//!   placement algorithms iteratively shorten.
//!
//! # Examples
//!
//! ```
//! use wadc_plan::bandwidth::BwMatrix;
//! use wadc_plan::cost::CostModel;
//! use wadc_plan::critical_path::placement_cost;
//! use wadc_plan::placement::{HostRoster, Placement};
//! use wadc_plan::tree::CombinationTree;
//!
//! let tree = CombinationTree::complete_binary(8)?;
//! let roster = HostRoster::one_host_per_server(8);
//! let bw = BwMatrix::from_fn(9, |_, _| 64_000.0);
//! let p = Placement::download_all(&tree, &roster);
//! let secs = placement_cost(&tree, &roster, &p, &bw, &CostModel::paper_defaults());
//! assert!(secs > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod cost;
pub mod critical_path;
pub mod ids;
pub mod ordering;
pub mod placement;
pub mod tree;

pub use bandwidth::{BandwidthView, BwMatrix};
pub use cost::CostModel;
pub use critical_path::{critical_path, placement_cost, CriticalPath};
pub use ids::{HostId, NodeId, OperatorId};
pub use placement::{HostRoster, Placement, PlacementError};
pub use tree::{CombinationTree, NodeKind, TreeError, TreeShape};
