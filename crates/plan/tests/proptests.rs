//! Randomized tests of trees, placements and critical-path analysis.
//! Cases are drawn from the in-repo [`Rng64`] so runs are deterministic.

use wadc_plan::bandwidth::BwMatrix;
use wadc_plan::cost::CostModel;
use wadc_plan::critical_path::{critical_path, placement_cost, subtree_costs};
use wadc_plan::ids::{HostId, NodeId, OperatorId};
use wadc_plan::placement::{HostRoster, Placement};
use wadc_plan::tree::{CombinationTree, NodeKind, TreeShape};
use wadc_sim::rng::{derive_seed2, Rng64};

const CASES: u64 = 48;

fn case_rng(test: u64, case: u64) -> Rng64 {
    Rng64::seed_from_u64(derive_seed2(0x1A4, test, case))
}

fn arb_shape(rng: &mut Rng64) -> TreeShape {
    if rng.bool_with(0.5) {
        TreeShape::CompleteBinary
    } else {
        TreeShape::LeftDeep
    }
}

/// A random bandwidth matrix over `n` hosts from a seed.
fn bw_from_seed(n: usize, seed: u64) -> BwMatrix {
    BwMatrix::from_fn(n, |a, b| {
        let h = (a.index() as u64 + 13)
            .wrapping_mul(b.index() as u64 + 41)
            .wrapping_mul(seed | 1);
        1_000.0 + (h % 100_000) as f64
    })
}

/// A random valid placement from a seed.
fn placement_from_seed(tree: &CombinationTree, roster: &HostRoster, seed: u64) -> Placement {
    let mut p = Placement::download_all(tree, roster);
    for i in 0..tree.operator_count() {
        let h = (seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add((i as u64).wrapping_mul(1442695040888963407))
            >> 33) as usize
            % roster.host_count();
        p.set_site(OperatorId::new(i), HostId::new(h));
    }
    p
}

/// Both builders produce structurally valid trees with n-1 operators.
#[test]
fn trees_are_well_formed() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let shape = arb_shape(&mut rng);
        let n = rng.range_usize(38) + 2;
        let tree = CombinationTree::build(shape, n).expect("n >= 2");
        assert_eq!(tree.check_invariants(), Ok(()));
        assert_eq!(tree.server_count(), n);
        assert_eq!(tree.operator_count(), n - 1);
        assert_eq!(tree.nodes().len(), 2 * n);
        // Every operator level is below the depth, and all levels up to
        // depth-1 are inhabited (the epoch wavefront needs this).
        let depth = tree.depth();
        let mut seen = vec![false; depth];
        for i in 0..tree.operator_count() {
            let l = tree.operator_level(OperatorId::new(i));
            assert!(l < depth);
            seen[l] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }
}

/// The critical path cost dominates the cost of every leaf-to-root chain,
/// and the reported path is one that attains it.
#[test]
fn critical_path_dominates_all_paths() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let shape = arb_shape(&mut rng);
        let n = rng.range_usize(18) + 2;
        let bw_seed = rng.next_u64();
        let p_seed = rng.next_u64();
        let tree = CombinationTree::build(shape, n).expect("n >= 2");
        let roster = HostRoster::one_host_per_server(n);
        let bw = bw_from_seed(n + 1, bw_seed);
        let placement = placement_from_seed(&tree, &roster, p_seed);
        let model = CostModel::paper_defaults();
        let cp = critical_path(&tree, &roster, &placement, &bw, &model);

        let chain_cost = |leaf: NodeId| {
            let mut cost = model.disk_secs;
            let mut cur = leaf;
            while let Some(parent) = tree.node(cur).parent {
                cost += model.edge_cost(
                    &bw,
                    placement.node_host(&tree, &roster, cur),
                    placement.node_host(&tree, &roster, parent),
                );
                if matches!(tree.node(parent).kind, NodeKind::Operator(_)) {
                    cost += model.compute_secs;
                }
                cur = parent;
            }
            cost
        };
        for &leaf in tree.server_nodes() {
            assert!(chain_cost(leaf) <= cp.cost + 1e-9);
        }
        // The returned path starts at a server, ends at the root, and its
        // chain cost equals the reported cost.
        assert!(matches!(tree.node(cp.path[0]).kind, NodeKind::Server(_)));
        assert_eq!(*cp.path.last().unwrap(), tree.root());
        assert!((chain_cost(cp.path[0]) - cp.cost).abs() < 1e-9);
    }
}

/// Subtree costs are monotone along parent links and the root cost equals
/// `placement_cost`.
#[test]
fn subtree_costs_consistent() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let shape = arb_shape(&mut rng);
        let n = rng.range_usize(18) + 2;
        let bw_seed = rng.next_u64();
        let p_seed = rng.next_u64();
        let tree = CombinationTree::build(shape, n).expect("n >= 2");
        let roster = HostRoster::one_host_per_server(n);
        let bw = bw_from_seed(n + 1, bw_seed);
        let placement = placement_from_seed(&tree, &roster, p_seed);
        let model = CostModel::paper_defaults();
        let costs = subtree_costs(&tree, &roster, &placement, &bw, &model);
        for (i, node) in tree.nodes().iter().enumerate() {
            for &c in &node.children {
                assert!(costs[i] >= costs[c.index()] - 1e-12);
            }
        }
        let total = placement_cost(&tree, &roster, &placement, &bw, &model);
        assert_eq!(costs[tree.root().index()], total);
    }
}

/// Co-locating an operator with both its producers and its consumer never
/// increases the total cost relative to placing it on an isolated slow
/// host (sanity of the edge-cost structure).
#[test]
fn colocated_edges_are_free() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let n = rng.range_usize(10) + 2;
        let bw_seed = rng.next_u64();
        let tree = CombinationTree::complete_binary(n).expect("n >= 2");
        let roster = HostRoster::one_host_per_server(n);
        let bw = bw_from_seed(n + 1, bw_seed);
        let model = CostModel::paper_defaults();
        // All operators at the client: every inter-operator edge is free,
        // so total cost is bounded by slowest (server→client edge) plus
        // the chain of computes.
        let p = Placement::download_all(&tree, &roster);
        let total = placement_cost(&tree, &roster, &p, &bw, &model);
        let max_edge = (0..n)
            .map(|s| model.edge_cost(&bw, roster.server_host(s), roster.client()))
            .fold(0.0f64, f64::max);
        let bound = model.disk_secs + max_edge + tree.depth() as f64 * model.compute_secs;
        assert!(total <= bound + 1e-9);
    }
}

/// Placement `diff` returns exactly the operators whose sites differ.
#[test]
fn placement_diff_is_exact() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let n = rng.range_usize(18) + 2;
        let p_seed = rng.next_u64();
        let q_seed = rng.next_u64();
        let tree = CombinationTree::complete_binary(n).expect("n >= 2");
        let roster = HostRoster::one_host_per_server(n);
        let p = placement_from_seed(&tree, &roster, p_seed);
        let q = placement_from_seed(&tree, &roster, q_seed);
        let diff = p.diff(&q);
        for i in 0..tree.operator_count() {
            let op = OperatorId::new(i);
            assert_eq!(diff.contains(&op), p.site(op) != q.site(op));
        }
    }
}
