//! Benchmarks of the placement machinery: critical-path evaluation and the
//! one-shot search, across tree sizes and shapes.

use wadc_bench::harness::Harness;
use wadc_core::algorithms::local_step::{best_local_site, LocalContext};
use wadc_core::algorithms::one_shot::one_shot_placement;
use wadc_plan::bandwidth::BwMatrix;
use wadc_plan::cost::CostModel;
use wadc_plan::critical_path::{placement_cost, IncrementalCriticalPath};
use wadc_plan::ids::HostId;
use wadc_plan::placement::{HostRoster, Placement};
use wadc_plan::tree::CombinationTree;

fn varied_bw(n_hosts: usize) -> BwMatrix {
    BwMatrix::from_fn(n_hosts, |a, b| {
        2_000.0 + ((a.index() * 31 + b.index() * 17) % 97) as f64 * 3_000.0
    })
}

fn bench_critical_path(h: &mut Harness) {
    h.group("critical_path");
    for n in [8usize, 16, 32] {
        let tree = CombinationTree::complete_binary(n).unwrap();
        let roster = HostRoster::one_host_per_server(n);
        let bw = varied_bw(n + 1);
        let model = CostModel::paper_defaults();
        let p = Placement::download_all(&tree, &roster);
        h.bench(&format!("evaluate_{n}_servers"), || {
            placement_cost(&tree, &roster, &p, &bw, &model)
        });
    }
}

/// The placement search's inner question — "what would the root cost be if
/// this operator moved there?" — answered two ways: a full tree recompute
/// versus the incremental evaluator's O(depth) root-ward probe. Both scan
/// the same (operator × host) grid, so the ratio is the probe's speedup.
fn bench_incremental_probe(h: &mut Harness) {
    h.group("incremental_probe");
    for n in [16usize, 32] {
        let tree = CombinationTree::complete_binary(n).unwrap();
        let roster = HostRoster::one_host_per_server(n);
        let bw = varied_bw(n + 1);
        let model = CostModel::paper_defaults();
        let placement = Placement::download_all(&tree, &roster);
        h.bench(&format!("full_recompute_{n}_servers"), || {
            let mut p = placement.clone();
            let mut acc = 0.0f64;
            for i in 0..tree.operator_count() {
                let op = wadc_plan::ids::OperatorId::new(i);
                let original = p.site(op);
                for host in roster.hosts() {
                    p.set_site(op, host);
                    acc += placement_cost(&tree, &roster, &p, &bw, &model);
                }
                p.set_site(op, original);
            }
            acc
        });
        h.bench(&format!("incremental_{n}_servers"), || {
            let eval = IncrementalCriticalPath::new(&tree, &roster, &placement, &bw, &model);
            let mut acc = 0.0f64;
            for i in 0..tree.operator_count() {
                let op = wadc_plan::ids::OperatorId::new(i);
                for host in roster.hosts() {
                    acc += eval.cost_if_moved(op, host);
                }
            }
            acc
        });
    }
}

fn bench_one_shot(h: &mut Harness) {
    h.group("one_shot_search");
    for n in [8usize, 16, 32] {
        let tree = CombinationTree::complete_binary(n).unwrap();
        let roster = HostRoster::one_host_per_server(n);
        let bw = varied_bw(n + 1);
        let model = CostModel::paper_defaults();
        h.bench(&format!("binary_{n}_servers"), || {
            one_shot_placement(&tree, &roster, &bw, &model)
        });
    }
    let tree = CombinationTree::left_deep(16).unwrap();
    let roster = HostRoster::one_host_per_server(16);
    let bw = varied_bw(17);
    let model = CostModel::paper_defaults();
    h.bench("left_deep_16_servers", || {
        one_shot_placement(&tree, &roster, &bw, &model)
    });
}

fn bench_local_step(h: &mut Harness) {
    h.group("local_step");
    let bw = varied_bw(33);
    let model = CostModel::paper_defaults();
    let ctx = LocalContext {
        producers: vec![HostId::new(0), HostId::new(1)],
        consumer: HostId::new(2),
        current: HostId::new(3),
        extra_candidates: (4..10).map(HostId::new).collect(),
    };
    h.bench("local_step_decision_k6", || {
        best_local_site(&ctx, &bw, &model)
    });
}

fn main() {
    let mut h = Harness::new();
    bench_critical_path(&mut h);
    bench_incremental_probe(&mut h);
    bench_one_shot(&mut h);
    bench_local_step(&mut h);
}
