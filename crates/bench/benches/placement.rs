//! Benchmarks of the placement machinery: critical-path evaluation and the
//! one-shot search, across tree sizes and shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wadc_core::algorithms::local_step::{best_local_site, LocalContext};
use wadc_core::algorithms::one_shot::one_shot_placement;
use wadc_plan::bandwidth::BwMatrix;
use wadc_plan::cost::CostModel;
use wadc_plan::critical_path::placement_cost;
use wadc_plan::ids::HostId;
use wadc_plan::placement::{HostRoster, Placement};
use wadc_plan::tree::CombinationTree;

fn varied_bw(n_hosts: usize) -> BwMatrix {
    BwMatrix::from_fn(n_hosts, |a, b| {
        2_000.0 + ((a.index() * 31 + b.index() * 17) % 97) as f64 * 3_000.0
    })
}

fn bench_critical_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("critical_path");
    for n in [8usize, 16, 32] {
        let tree = CombinationTree::complete_binary(n).unwrap();
        let roster = HostRoster::one_host_per_server(n);
        let bw = varied_bw(n + 1);
        let model = CostModel::paper_defaults();
        let p = Placement::download_all(&tree, &roster);
        g.bench_function(format!("evaluate_{n}_servers"), |b| {
            b.iter(|| black_box(placement_cost(&tree, &roster, &p, &bw, &model)))
        });
    }
    g.finish();
}

fn bench_one_shot(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_shot_search");
    g.sample_size(20);
    for n in [8usize, 16, 32] {
        let tree = CombinationTree::complete_binary(n).unwrap();
        let roster = HostRoster::one_host_per_server(n);
        let bw = varied_bw(n + 1);
        let model = CostModel::paper_defaults();
        g.bench_function(format!("binary_{n}_servers"), |b| {
            b.iter(|| black_box(one_shot_placement(&tree, &roster, &bw, &model)))
        });
    }
    let tree = CombinationTree::left_deep(16).unwrap();
    let roster = HostRoster::one_host_per_server(16);
    let bw = varied_bw(17);
    let model = CostModel::paper_defaults();
    g.bench_function("left_deep_16_servers", |b| {
        b.iter(|| black_box(one_shot_placement(&tree, &roster, &bw, &model)))
    });
    g.finish();
}

fn bench_local_step(c: &mut Criterion) {
    let bw = varied_bw(33);
    let model = CostModel::paper_defaults();
    let ctx = LocalContext {
        producers: vec![HostId::new(0), HostId::new(1)],
        consumer: HostId::new(2),
        current: HostId::new(3),
        extra_candidates: (4..10).map(HostId::new).collect(),
    };
    c.bench_function("local_step_decision_k6", |b| {
        b.iter(|| black_box(best_local_site(&ctx, &bw, &model)))
    });
}

criterion_group!(benches, bench_critical_path, bench_one_shot, bench_local_step);
criterion_main!(benches);
