//! Meso-benchmarks: full engine runs along the code paths each paper
//! figure exercises, at reduced scale (the figure binaries in `src/bin`
//! run the full 300-configuration studies).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wadc_core::engine::Algorithm;
use wadc_core::experiment::Experiment;
use wadc_plan::tree::TreeShape;
use wadc_sim::time::SimDuration;

fn bench_engine_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_run");
    g.sample_size(20);
    let exp = Experiment::quick(8, 5);
    for alg in [
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        Algorithm::Local {
            period: SimDuration::from_secs(30),
            extra_candidates: 2,
        },
    ] {
        g.bench_function(alg.name(), |b| b.iter(|| black_box(exp.run(alg))));
    }
    g.finish();
}

fn bench_tree_shapes(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_run_shape");
    g.sample_size(20);
    for shape in [TreeShape::CompleteBinary, TreeShape::LeftDeep] {
        let exp = Experiment::quick(8, 6).with_tree_shape(shape);
        g.bench_function(format!("{shape:?}"), |b| {
            b.iter(|| black_box(exp.run(Algorithm::global_default())))
        });
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_run_scaling");
    g.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        let exp = Experiment::quick(n, 7);
        g.bench_function(format!("{n}_servers_global"), |b| {
            b.iter(|| black_box(exp.run(Algorithm::global_default())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine_runs, bench_tree_shapes, bench_scaling);
criterion_main!(benches);
