//! Meso-benchmarks: full engine runs along the code paths each paper
//! figure exercises, at reduced scale (the figure binaries in `src/bin`
//! run the full 300-configuration studies).

use wadc_bench::harness::Harness;
use wadc_core::engine::Algorithm;
use wadc_core::experiment::Experiment;
use wadc_plan::tree::TreeShape;
use wadc_sim::time::SimDuration;

fn bench_engine_runs(h: &mut Harness) {
    h.group("engine_run");
    let exp = Experiment::quick(8, 5);
    for alg in [
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        Algorithm::Local {
            period: SimDuration::from_secs(30),
            extra_candidates: 2,
        },
    ] {
        h.bench(alg.name(), || exp.run(alg));
    }
}

fn bench_tree_shapes(h: &mut Harness) {
    h.group("engine_run_shape");
    for shape in [TreeShape::CompleteBinary, TreeShape::LeftDeep] {
        let exp = Experiment::quick(8, 6).with_tree_shape(shape);
        h.bench(&format!("{shape:?}"), || {
            exp.run(Algorithm::global_default())
        });
    }
}

fn bench_scaling(h: &mut Harness) {
    h.group("engine_run_scaling");
    for n in [4usize, 8, 16, 32] {
        let exp = Experiment::quick(n, 7);
        h.bench(&format!("{n}_servers_global"), || {
            exp.run(Algorithm::global_default())
        });
    }
}

fn main() {
    let mut h = Harness::new();
    bench_engine_runs(&mut h);
    bench_tree_shapes(&mut h);
    bench_scaling(&mut h);
}
