//! Micro-benchmarks of the simulation substrates: the event queue, the
//! priority resource, and bandwidth-trace integration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use wadc_sim::event::EventQueue;
use wadc_sim::resource::{Priority, Resource};
use wadc_sim::time::{SimDuration, SimTime};
use wadc_trace::synth::{generate, SynthParams};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 10_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("schedule_pop_{n}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::new();
                // Pseudo-random but deterministic interleave of times.
                for i in 0..n {
                    let t = (i.wrapping_mul(2654435761)) % 1_000_000;
                    q.schedule(SimTime::from_micros(t), i);
                }
                let mut acc = 0u64;
                while let Some((_, _, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_resource(c: &mut Criterion) {
    c.bench_function("resource_request_release_1k", |b| {
        b.iter(|| {
            let mut r: Resource<u64> = Resource::new();
            for i in 0..1_000u64 {
                let prio = if i % 7 == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                };
                if r.request(i, prio).is_none() && i % 3 == 0 {
                    black_box(r.release());
                }
            }
            while r.is_busy() {
                if r.release().is_none() {
                    break;
                }
            }
            black_box(r.total_served())
        })
    });
}

fn bench_trace_integration(c: &mut Criterion) {
    let trace = generate(
        &SynthParams::wide_area(64_000.0),
        SimDuration::from_hours(24),
        7,
    );
    c.bench_function("trace_transfer_duration", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 977) % (20 * 3600);
            black_box(trace.transfer_duration(131_072, SimTime::from_secs(t)))
        })
    });
    c.bench_function("trace_generate_2h", |b| {
        let params = SynthParams::wide_area(64_000.0);
        b.iter_batched(
            || (),
            |_| black_box(generate(&params, SimDuration::from_hours(2), 3)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_event_queue, bench_resource, bench_trace_integration);
criterion_main!(benches);
