//! Micro-benchmarks of the simulation substrates: the event queue, the
//! priority resource, and bandwidth-trace integration.

use wadc_bench::harness::Harness;
use wadc_sim::event::EventQueue;
use wadc_sim::resource::{Priority, Resource};
use wadc_sim::time::{SimDuration, SimTime};
use wadc_trace::synth::{generate, SynthParams};

fn bench_event_queue(h: &mut Harness) {
    h.group("event_queue");
    for n in [1_000u64, 10_000] {
        h.bench(&format!("schedule_pop_{n}"), || {
            let mut q = EventQueue::new();
            // Pseudo-random but deterministic interleave of times.
            for i in 0..n {
                let t = (i.wrapping_mul(2654435761)) % 1_000_000;
                q.schedule(SimTime::from_micros(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, _, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        });
    }
    // The network layer's real access pattern: schedules mixed with true
    // cancels (timeout disarms) and pops, exercising the indexed heap's
    // O(log n) cancel path rather than lazy deletion.
    for n in [1_000u64, 10_000] {
        h.bench(&format!("schedule_cancel_pop_mix_{n}"), || {
            let mut q = EventQueue::new();
            let mut pending = Vec::new();
            for i in 0..n {
                let t = (i.wrapping_mul(2654435761)) % 1_000_000;
                pending.push(q.schedule(SimTime::from_micros(t), i));
            }
            let mut acc = 0u64;
            let mut i = 0u64;
            while let Some((_, _, v)) = q.pop() {
                acc = acc.wrapping_add(v);
                i += 1;
                // Cancel one in-flight event for every four pops.
                if i.is_multiple_of(4) {
                    let k = (i.wrapping_mul(0x9E3779B97F4A7C15) as usize) % pending.len();
                    q.cancel(pending.swap_remove(k));
                }
                // Reschedule two for every three pops (steady churn).
                if i.is_multiple_of(3) {
                    let base = q.now().as_micros();
                    pending.push(q.schedule(SimTime::from_micros(base + i % 977), n + i));
                    pending.push(q.schedule(SimTime::from_micros(base + i % 3191), 2 * n + i));
                }
                if i >= 4 * n {
                    break;
                }
            }
            acc
        });
    }
}

fn bench_resource(h: &mut Harness) {
    h.group("resource");
    h.bench("resource_request_release_1k", || {
        let mut r: Resource<u64> = Resource::new();
        for i in 0..1_000u64 {
            let prio = if i % 7 == 0 {
                Priority::High
            } else {
                Priority::Normal
            };
            if r.request(i, prio).is_none() && i % 3 == 0 {
                std::hint::black_box(r.release());
            }
        }
        while r.is_busy() {
            if r.release().is_none() {
                break;
            }
        }
        r.total_served()
    });
}

fn bench_trace_integration(h: &mut Harness) {
    h.group("trace");
    let trace = generate(
        &SynthParams::wide_area(64_000.0),
        SimDuration::from_hours(24),
        7,
    );
    let mut t = 0u64;
    h.bench("trace_transfer_duration", || {
        t = (t + 977) % (20 * 3600);
        trace.transfer_duration(131_072, SimTime::from_secs(t))
    });
    let params = SynthParams::wide_area(64_000.0);
    h.bench("trace_generate_2h", || {
        generate(&params, SimDuration::from_hours(2), 3)
    });
}

fn main() {
    let mut h = Harness::new();
    bench_event_queue(&mut h);
    bench_resource(&mut h);
    bench_trace_integration(&mut h);
}
