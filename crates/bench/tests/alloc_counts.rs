//! End-to-end check of the allocation-counting harness against the
//! engine's pooled steady state: a warm-pool run of the same world must
//! allocate strictly less than a cold run — and produce the same digest.
//!
//! This is the only test in the binary: the counting allocator is
//! process-global, so a second concurrent test would perturb the counts.

use wadc_bench::alloc::{AllocScope, CountingAlloc};
use wadc_core::engine::{Algorithm, MsgPool};
use wadc_core::experiment::Experiment;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn warm_pool_run_allocates_strictly_less_than_cold() {
    // Warm up: fills the message pool and the experiment's shared
    // workload cache, exactly as a study's later runs would find them.
    let warm_exp = Experiment::quick(4, 7);
    let mut pool = MsgPool::new();
    let _ = warm_exp.run_pooled(Algorithm::OneShot, &mut pool);

    let cold_exp = Experiment::quick(4, 7);
    let scope = AllocScope::begin();
    let cold = cold_exp.run(Algorithm::OneShot);
    let cold_stats = scope.finish();

    let scope = AllocScope::begin();
    let warm = warm_exp.run_pooled(Algorithm::OneShot, &mut pool);
    let warm_stats = scope.finish();

    assert_eq!(
        warm.digest(),
        cold.digest(),
        "pooling must not change results"
    );
    assert!(
        cold_stats.allocs > 0,
        "the counting allocator should be installed"
    );
    // Strictly less, not a fixed ratio: a cold run warms its *own*
    // internal pool as completions recycle boxes mid-run, so the
    // warm-pool advantage is the initial fill plus the shared workload —
    // real, but bounded.
    assert!(
        warm_stats.allocs < cold_stats.allocs,
        "warm run should allocate less than cold: warm {} vs cold {}",
        warm_stats.allocs,
        cold_stats.allocs
    );
}
