//! # wadc-bench — figure regeneration and performance benches
//!
//! One binary per figure of the paper's evaluation:
//!
//! | binary | paper figure | content |
//! |---|---|---|
//! | `fig2` | Figure 2 | bandwidth variation of one host pair (10 min / 2 days) |
//! | `fig6` | Figure 6 | sorted speedup curves, 300 configs, 8 servers |
//! | `fig7` | Figure 7 | local algorithm with k = 0..6 extra candidate sites |
//! | `fig8` | Figure 8 | scaling: 4 → 32 servers |
//! | `fig9` | Figure 9 | relocation period 2 min → 1 hour |
//! | `fig10` | Figure 10 | complete-binary vs left-deep ordering |
//!
//! Run with `cargo run --release -p wadc-bench --bin figN`. Every binary
//! accepts `--configs N` (default: the paper's 300), `--seed S`,
//! `--threads T` and `--json PATH` (machine-readable series archive).
//!
//! The `benches/` directory holds criterion micro/meso benchmarks of the
//! kernel, the placement search and the end-to-end engine.

// `deny` rather than `forbid`: the counting allocator in `alloc` must
// implement `GlobalAlloc`, which is an `unsafe` trait; that module
// scopes its own allow. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod harness;
pub mod json;

use std::path::PathBuf;

/// Command-line arguments shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct FigArgs {
    /// Number of network configurations to evaluate.
    pub configs: usize,
    /// Worker threads.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Optional path for a JSON archive of the series.
    pub json: Option<PathBuf>,
}

impl FigArgs {
    /// Parses `std::env::args`, with the paper's 300 configurations as the
    /// default. `--threads` is clamped to the machine's available
    /// parallelism (with a warning) — `0` means "all cores".
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut args = FigArgs {
            configs: 300,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            seed: 1998,
            json: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--configs" => args.configs = value("--configs").parse().expect("integer"),
                "--threads" => args.threads = value("--threads").parse().expect("integer"),
                "--seed" => args.seed = value("--seed").parse().expect("integer"),
                "--json" => args.json = Some(PathBuf::from(value("--json"))),
                other => panic!("unknown flag {other}; known: --configs --threads --seed --json"),
            }
        }
        let plan = wadc_core::sweep::clamp_threads(args.threads);
        if let Some(warning) = &plan.warning {
            eprintln!("warning: {warning}");
        }
        args.threads = plan.threads;
        args
    }

    /// Writes the JSON archive if `--json` was given.
    pub fn maybe_write_json(&self, value: &json::Json) {
        if let Some(path) = &self.json {
            std::fs::write(path, value.to_string_pretty())
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!("series archived to {}", path.display());
        }
    }
}

/// Prints a named series as one row per element, `index value`.
pub fn print_series(name: &str, values: &[f64]) {
    println!("# {name}");
    for (i, v) in values.iter().enumerate() {
        println!("{i} {v:.4}");
    }
    println!();
}

/// Prints a compact summary line for a series.
pub fn print_summary(name: &str, values: &[f64]) {
    let n = values.len().max(1) as f64;
    let mean = values.iter().sum::<f64>() / n;
    let median = wadc_sim::stats::median(values).unwrap_or(0.0);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("{name}: mean {mean:.2}  median {median:.2}  min {min:.2}  max {max:.2}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn summary_of_constant_series() {
        // print_summary only prints; sanity-check it does not panic on
        // edge inputs.
        super::print_summary("empty", &[]);
        super::print_summary("one", &[1.0]);
        super::print_series("s", &[1.0, 2.0]);
    }
}
