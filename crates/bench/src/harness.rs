//! A small wall-clock benchmark harness.
//!
//! The `benches/` targets report per-iteration timing without an external
//! framework: each benchmark is warmed up, then run in batches until a
//! time budget is spent, and the per-iteration mean and minimum are
//! printed in a fixed-width table. Use `cargo bench -p wadc-bench`.

use std::time::{Duration, Instant};

/// Runs named closures and prints per-iteration timings.
pub struct Harness {
    budget: Duration,
    group: String,
}

impl Harness {
    /// A harness with the default 200 ms measurement budget per benchmark.
    pub fn new() -> Self {
        Harness {
            budget: Duration::from_millis(200),
            group: String::new(),
        }
    }

    /// Starts a named group; subsequent rows are printed under it.
    pub fn group(&mut self, name: &str) {
        self.group = name.to_string();
        println!("\n## {name}");
    }

    /// Measures `f`, printing mean and best time per iteration.
    ///
    /// The closure's return value is consumed with a volatile read so the
    /// optimizer cannot delete the work.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        // Warm-up and calibration: find an iteration count that costs
        // roughly 1/10 of the budget per batch.
        let t0 = Instant::now();
        consume(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch = ((self.budget.as_nanos() / 10 / once.as_nanos()).max(1)) as usize;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let bt = Instant::now();
            for _ in 0..batch {
                consume(f());
            }
            let elapsed = bt.elapsed();
            let per_iter = elapsed / batch as u32;
            best = best.min(per_iter);
            total += elapsed;
            iters += batch as u64;
        }
        let mean = total / iters.max(1) as u32;
        println!(
            "{name:<40} mean {:>12}  best {:>12}  ({iters} iters)",
            fmt_ns(mean),
            fmt_ns(best)
        );
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

/// Prevents the optimizer from discarding a benchmark result.
fn consume<T>(value: T) {
    std::hint::black_box(value);
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(Duration::from_nanos(120)), "120 ns");
        assert_eq!(fmt_ns(Duration::from_micros(120)), "120.0 us");
        assert_eq!(fmt_ns(Duration::from_millis(120)), "120.00 ms");
    }

    #[test]
    fn bench_runs_to_completion() {
        let mut h = Harness {
            budget: Duration::from_millis(5),
            group: String::new(),
        };
        let mut count = 0u64;
        h.bench("noop", || {
            count += 1;
            count
        });
        assert!(count > 0);
        let _ = &h.group;
    }
}
