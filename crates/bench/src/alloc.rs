//! A counting global allocator for the perf harness.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and keeps process-wide
//! tallies of allocation traffic: calls to `alloc`/`dealloc`, bytes
//! allocated, and the high-water mark of live bytes. Binaries that want
//! the counts install it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: wadc_bench::alloc::CountingAlloc = wadc_bench::alloc::CountingAlloc;
//! ```
//!
//! and bracket the region of interest with an [`AllocScope`]; the
//! scope's [`finish`](AllocScope::finish) returns the traffic that
//! happened inside it as an [`AllocStats`] delta. When the allocator is
//! not installed the counters simply stay at zero and every scope
//! reports empty stats, so library code can call the API
//! unconditionally.
//!
//! Counting is always on (never toggled) so the live-byte gauge can
//! never underflow; scopes are snapshot deltas, which also makes them
//! cheap. Scopes are not meant to be nested across threads — the
//! counters are process-global, so a scope observes *all* threads'
//! traffic. The perf bin runs its measured region single-threaded for
//! exactly this reason.

// The one unavoidable `unsafe` in the crate: implementing
// `GlobalAlloc` requires it. Everything else stays forbidden via the
// crate-level `deny(unsafe_code)`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: u64) {
    ALLOCS.fetch_add(1, Relaxed);
    BYTES.fetch_add(size, Relaxed);
    let live = CURRENT.fetch_add(size, Relaxed) + size;
    PEAK.fetch_max(live, Relaxed);
}

fn on_free(size: u64) {
    FREES.fetch_add(1, Relaxed);
    CURRENT.fetch_sub(size, Relaxed);
}

/// A [`GlobalAlloc`] that forwards to [`System`] and counts traffic.
///
/// Zero-sized; install with `#[global_allocator]`.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_free(layout.size() as u64);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // A successful realloc is one free of the old block plus one
            // allocation of the new one.
            on_free(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

/// Allocation traffic observed inside one [`AllocScope`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Calls to `alloc`/`alloc_zeroed` (plus the alloc half of reallocs).
    pub allocs: u64,
    /// Calls to `dealloc` (plus the free half of reallocs).
    pub frees: u64,
    /// Total bytes requested across those allocations.
    pub bytes_allocated: u64,
    /// High-water mark of live bytes during the scope, measured from the
    /// live total at [`AllocScope::begin`].
    pub peak_bytes: u64,
}

/// A snapshot-delta window over the global allocation counters.
pub struct AllocScope {
    allocs: u64,
    frees: u64,
    bytes: u64,
    base_live: u64,
}

impl AllocScope {
    /// Opens a scope: snapshots the counters and resets the peak gauge
    /// to the current live total so `peak_bytes` is relative to now.
    pub fn begin() -> Self {
        let base_live = CURRENT.load(Relaxed);
        PEAK.store(base_live, Relaxed);
        AllocScope {
            allocs: ALLOCS.load(Relaxed),
            frees: FREES.load(Relaxed),
            bytes: BYTES.load(Relaxed),
            base_live,
        }
    }

    /// Closes the scope and returns the traffic since [`begin`](Self::begin).
    pub fn finish(self) -> AllocStats {
        AllocStats {
            allocs: ALLOCS.load(Relaxed) - self.allocs,
            frees: FREES.load(Relaxed) - self.frees,
            bytes_allocated: BYTES.load(Relaxed) - self.bytes,
            peak_bytes: PEAK.load(Relaxed).saturating_sub(self.base_live),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install CountingAlloc, so the counters
    // stay at zero; the scope API must still work and report empties.
    #[test]
    fn scope_without_installed_allocator_reports_zero() {
        let scope = AllocScope::begin();
        let _v: Vec<u64> = (0..1000).collect();
        let stats = scope.finish();
        assert_eq!(stats, AllocStats::default());
    }
}
