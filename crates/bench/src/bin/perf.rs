//! Perf-regression harness: wall-clock throughput of the three measured
//! hot paths — the DES kernel's event queue, the placement search, and
//! monotone bandwidth-trace lookups — plus a reduced paper-main study and
//! the quick study as end-to-end proxies, and the `study_full_t{1,4}`
//! pair: the paper's full 300-configuration study on the work-stealing
//! sweep driver at one and four threads, whose runs/sec ratio is the
//! sweep fabric's scaling headline.
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin perf \
//!     [--quick] [--reps N] [--seed S] [--json PATH] [--alloc-gate]
//! ```
//!
//! Emits `BENCH_perf.json` (override with `--json`): schema
//! `wadc-bench-perf-v2`, an array of benches keeping every v1 timing
//! field (`name`, `iterations`, `units_per_iteration`, `median_secs`,
//! `mean_secs`, `events_per_sec`) and adding allocation traffic measured
//! by the [`wadc_bench::alloc`] counting allocator over the *final*
//! repetition — the steady state, after every pool and cache is warm:
//! `allocs`, `frees`, `bytes_allocated`, `peak_bytes`, `allocs_per_unit`.
//!
//! Timings are informational — the harness fails only on panic, so CI can
//! run it at reduced scale without flaking on machine noise. Allocation
//! counts are *deterministic* (fixed seeds, single-threaded measurement),
//! so `--alloc-gate` turns them into a hard regression gate: if the
//! steady-state allocations per unit of work in the study benches exceed
//! the committed thresholds, the run exits nonzero. That keeps the
//! panics-not-timings rule — the gate never looks at a clock.
//!
//! The workloads are deterministic (fixed seeds, no wall-clock feedback),
//! so two builds of the same scale do the same work and their numbers are
//! directly comparable.

use std::path::PathBuf;
use std::time::Instant;

use wadc_bench::alloc::{AllocScope, AllocStats, CountingAlloc};
use wadc_bench::json::Json;
use wadc_core::algorithms::one_shot_placement;
use wadc_core::engine::{Algorithm, RunScratch};
use wadc_core::experiment::Experiment;
use wadc_core::study::{run_study, run_study_parallel, StudyParams};
use wadc_plan::bandwidth::BwMatrix;
use wadc_plan::cost::CostModel;
use wadc_plan::placement::HostRoster;
use wadc_plan::tree::CombinationTree;
use wadc_sim::event::EventQueue;
use wadc_sim::rng::Rng64;
use wadc_sim::stats::median;
use wadc_sim::time::{SimDuration, SimTime};
use wadc_topo::preset::TopoPreset;
use wadc_trace::model::BandwidthTrace;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Steady-state allocation budgets for the end-to-end study benches, in
/// allocations per unit of work (one unit = one engine run). Checked by
/// `--alloc-gate`. The values are the post-pooling measurements with
/// roughly 2× headroom — far below the pre-pooling baseline (see
/// `results/BENCH_perf_baseline_pr5.json`), so an accidental
/// reintroduction of per-message or per-poll allocation churn trips the
/// gate long before it costs wall-clock time. Raise them only with a
/// matching analysis in DESIGN.md §6b.
const MAX_ALLOCS_PER_RUN_STUDY_QUICK: f64 = 160.0;
/// `study_reduced` amortizes its one cold warmup over a single
/// configuration at quick scale (~270 allocs/run measured there, ~96 at
/// full scale where four configurations share the arena), so its budget
/// carries the quick-scale measurement.
const MAX_ALLOCS_PER_RUN_STUDY_REDUCED: f64 = 450.0;
/// The quick study over the paper-WAN shared-bottleneck topology. The
/// fair-share model keeps per-flow state, reschedules completions on
/// every recompute, and builds the topology graph per configuration, so
/// its steady state is costlier than the flat per-pair table's
/// (~106 allocs/run measured vs ~79); the budget is that measurement
/// with ~2x headroom (see `results/BENCH_perf_baseline_pr10.json` for
/// the pre-arena numbers).
const MAX_ALLOCS_PER_RUN_STUDY_TOPO: f64 = 220.0;
/// The sweep-driver study benches: per-worker pools mean each worker pays
/// one cold warmup, so the budget is the sequential per-run budget plus
/// amortized headroom for `threads` warmups (at quick scale the t4
/// variant spreads only 8 configurations over 4 cold arenas, ~151
/// allocs/run measured; full scale sits near 89). The
/// thread-count-dependent slack keeps the gate meaningful per worker
/// without flaking on how the atomic work index happened to deal
/// configurations to workers.
const MAX_ALLOCS_PER_RUN_STUDY_FULL: f64 = 300.0;

/// Peak-resident-byte budgets for the study benches, also checked by
/// `--alloc-gate`. Peak footprint is what the arena refactor must *not*
/// regress while chasing allocation counts: reset-don't-free recycling
/// keeps capacity parked between runs, and these ceilings bound how much
/// it may park. Measured peaks are ~6.7 MiB for the quick-shaped studies
/// and ~24.5 MiB for the full study (per-worker arenas at the full
/// workload); budgets are ~2x those.
const MAX_PEAK_BYTES_STUDY: u64 = 16 << 20;
const MAX_PEAK_BYTES_STUDY_FULL: u64 = 48 << 20;

struct Args {
    quick: bool,
    reps: usize,
    seed: u64,
    json: PathBuf,
    alloc_gate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        reps: 5,
        seed: 1998,
        json: PathBuf::from("BENCH_perf.json"),
        alloc_gate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--alloc-gate" => args.alloc_gate = true,
            "--reps" => args.reps = value("--reps").parse().expect("integer"),
            "--seed" => args.seed = value("--seed").parse().expect("integer"),
            "--json" => args.json = PathBuf::from(value("--json")),
            other => {
                panic!("unknown flag {other}; known: --quick --reps --seed --json --alloc-gate")
            }
        }
    }
    args
}

/// One bench's timings: `reps` wall-clock measurements of an iteration
/// that performs `units` units of work, plus the allocation traffic of
/// the final repetition (the steady state).
struct Bench {
    name: &'static str,
    units: u64,
    secs: Vec<f64>,
    alloc: AllocStats,
}

impl Bench {
    fn median_secs(&self) -> f64 {
        median(&self.secs).unwrap_or(0.0)
    }

    fn mean_secs(&self) -> f64 {
        self.secs.iter().sum::<f64>() / self.secs.len().max(1) as f64
    }

    fn events_per_sec(&self) -> f64 {
        let m = self.median_secs();
        if m > 0.0 {
            self.units as f64 / m
        } else {
            0.0
        }
    }

    fn allocs_per_unit(&self) -> f64 {
        self.alloc.allocs as f64 / self.units.max(1) as f64
    }
}

fn run_bench(name: &'static str, reps: usize, mut iter: impl FnMut() -> u64) -> Bench {
    let mut secs = Vec::with_capacity(reps);
    let mut units = 0;
    let mut alloc = AllocStats::default();
    for _ in 0..reps.max(1) {
        let scope = AllocScope::begin();
        let t0 = Instant::now();
        units = iter();
        secs.push(t0.elapsed().as_secs_f64());
        alloc = scope.finish();
    }
    let b = Bench {
        name,
        units,
        secs,
        alloc,
    };
    println!(
        "{:32} {:>10.1} units/s  (median {:.4} s, mean {:.4} s, {} reps, {:.1} allocs/unit)",
        b.name,
        b.events_per_sec(),
        b.median_secs(),
        b.mean_secs(),
        b.secs.len(),
        b.allocs_per_unit(),
    );
    b
}

/// Kernel throughput without cancellations: schedule a pool, then a long
/// pop-one/schedule-one steady state — the engine's common case.
fn event_queue_schedule_pop(n: usize, seed: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = Rng64::seed_from_u64(seed);
    let pool = (n / 8).max(64);
    for i in 0..pool {
        q.schedule(SimTime::from_micros(rng.range_u64(1, 1_000_000)), i as u64);
    }
    let mut ops = pool as u64;
    for _ in 0..n {
        let (_, _, v) = q.pop().expect("pool is never empty");
        q.schedule_in(SimDuration::from_micros(rng.range_u64(1, 1_000_000)), v);
        ops += 2;
    }
    while q.pop().is_some() {
        ops += 1;
    }
    std::hint::black_box(q.now());
    ops
}

/// Kernel throughput with true cancellation pressure: every iteration pops
/// one event, schedules two, and cancels one remembered handle — the
/// retry/timeout pattern the fault-recovery machinery generates.
fn event_queue_mix(n: usize, seed: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = Rng64::seed_from_u64(seed);
    let mut ids = Vec::with_capacity(n + 64);
    for i in 0..64u64 {
        ids.push(q.schedule(SimTime::from_micros(rng.range_u64(1, 10_000_000)), i));
    }
    let mut ops = ids.len() as u64;
    for i in 0..n {
        if q.pop().is_some() {
            ops += 1;
        }
        for _ in 0..2 {
            let at = q.now() + SimDuration::from_micros(rng.range_u64(1, 10_000_000));
            ids.push(q.schedule(at, i as u64));
            ops += 1;
        }
        let victim = ids.swap_remove(rng.range_usize(ids.len()));
        q.cancel(victim);
        ops += 1;
    }
    while q.pop().is_some() {
        ops += 1;
    }
    std::hint::black_box(q.now());
    ops
}

/// Full one-shot placement searches over `configs` distinct bandwidth
/// matrices on an `n`-server complete binary tree.
fn placement_search(n: usize, configs: usize, seed: u64) -> u64 {
    let tree = CombinationTree::complete_binary(n).expect("power-of-two server count");
    let roster = HostRoster::one_host_per_server(n);
    let model = CostModel::paper_defaults();
    let hosts = roster.host_count();
    let mut acc = 0.0f64;
    for cfg in 0..configs {
        let mut rng = Rng64::seed_from_u64(seed ^ (cfg as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut bw = BwMatrix::new(hosts);
        for a in 0..hosts {
            for b in (a + 1)..hosts {
                bw.set(
                    wadc_plan::ids::HostId::new(a),
                    wadc_plan::ids::HostId::new(b),
                    rng.range_f64(2_000.0, 2_000_000.0),
                );
            }
        }
        let r = one_shot_placement(&tree, &roster, &bw, &model);
        acc += r.cost;
    }
    std::hint::black_box(acc);
    configs as u64
}

/// Nearly monotone `transfer_duration` queries against one long
/// multi-segment trace — the access pattern of the network layer's link
/// lookups during a run.
fn trace_transfers(queries: usize, segments: usize, seed: u64) -> u64 {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut steps = Vec::with_capacity(segments);
    let mut t = 0.0f64;
    for _ in 0..segments {
        steps.push((t, rng.range_f64(4_000.0, 4_000_000.0)));
        t += rng.range_f64(10.0, 60.0);
    }
    let trace = BandwidthTrace::from_steps(&steps).expect("valid synthetic trace");
    let horizon = SimTime::from_secs_f64(t);
    let mut at = SimTime::ZERO;
    let mut acc = 0u64;
    for _ in 0..queries {
        at += SimDuration::from_micros(rng.range_u64(100_000, 30_000_000));
        if at > horizon {
            at = SimTime::ZERO; // wrap, as a fresh run's transfers do
        }
        let d = trace.transfer_duration(262_144, at);
        acc = acc.wrapping_add(d.as_micros());
    }
    std::hint::black_box(acc);
    queries as u64
}

/// A paper-main-scale single-configuration world, shared by the
/// `world_setup` and `single_run` microbenches: the same trace pool,
/// link assignment, and workload as configuration 0 of the full study.
fn paper_world(seed: u64) -> Experiment {
    let study = wadc_trace::study::BandwidthStudy::default_study(seed);
    let pool = study.noon_trace_pool(SimDuration::from_hours(24));
    Experiment::from_study_pool(8, &pool, 0, seed)
}

/// Pure world-construction cost on a warm arena: build the engine for a
/// paper-main configuration (tree, roster, initial placement search,
/// per-host monitors, network model) and tear it straight back down into
/// the scratch, never dispatching an event. This is the fixed per-run
/// overhead the [`RunScratch`] arena exists to amortize.
fn world_setup(builds: usize, seed: u64) -> u64 {
    let exp = paper_world(seed);
    let mut scratch = RunScratch::new();
    for _ in 0..builds {
        let engine = exp.engine_scratch(Algorithm::OneShot, scratch);
        scratch = engine.into_scratch();
    }
    std::hint::black_box(scratch.is_warm());
    builds as u64
}

/// One full engine run, end to end, on a warm arena: the per-run unit of
/// the study benches with the study driver and aggregation stripped away.
/// Alternates the one-shot and download-all algorithms so the arena is
/// exercised the way a study configuration exercises it.
fn single_run(runs: usize, seed: u64) -> u64 {
    let exp = paper_world(seed);
    let mut scratch = RunScratch::new();
    let mut delivered = 0usize;
    for i in 0..runs {
        let alg = if i % 2 == 0 {
            Algorithm::OneShot
        } else {
            Algorithm::DownloadAll
        };
        delivered += exp.run_scratch(alg, &mut scratch).images_delivered;
    }
    std::hint::black_box(delivered);
    runs as u64
}

/// A reduced paper-main study: the end-to-end number every other bench
/// feeds into. Uses the sequential driver so the measurement is not
/// scheduler-dependent.
fn study_reduced(configs: usize, seed: u64) -> u64 {
    let mut p = StudyParams::paper_main(seed);
    p.n_configs = configs;
    p.trace_window = SimDuration::from_hours(2);
    p.workload.images_per_server = 16;
    let runs_per_config = 1 + p.algorithms.len() as u64; // + download-all
    let results = run_study(&p);
    std::hint::black_box(results.outcomes.len());
    configs as u64 * runs_per_config
}

/// The full quick-study configuration — identical at both harness scales,
/// so its allocation counts are mode-stable and can carry a committed
/// regression threshold. This is where study-level sharing (one world per
/// config instead of four) shows up.
fn study_quick(seed: u64) -> u64 {
    let p = StudyParams::quick(seed);
    let runs_per_config = 1 + p.algorithms.len() as u64; // + download-all
    let results = run_study(&p);
    std::hint::black_box(results.outcomes.len());
    p.n_configs as u64 * runs_per_config
}

/// The quick study over the paper-WAN topology: every configuration
/// routes regional access links over two shared oceanic backbones, so
/// each run pays the max-min fair-share machinery (flow management,
/// completion rescheduling, trace-boundary recomputes) end to end.
fn study_topo(seed: u64) -> u64 {
    let mut p = StudyParams::quick(seed);
    p.topology = Some(TopoPreset::PaperWan);
    let runs_per_config = 1 + p.algorithms.len() as u64; // + download-all
    let results = run_study(&p);
    std::hint::black_box(results.outcomes.len());
    p.n_configs as u64 * runs_per_config
}

/// The quick study through the sweep driver at `threads` workers — the
/// configuration CI gates on (`--alloc-gate` at threads=2): per-worker
/// pools must hold the same steady-state budget as the sequential run.
fn study_quick_threaded(seed: u64, threads: usize) -> u64 {
    let p = StudyParams::quick(seed);
    let runs_per_config = 1 + p.algorithms.len() as u64; // + download-all
    let results = run_study_parallel(&p, threads);
    std::hint::black_box(results.digest());
    p.n_configs as u64 * runs_per_config
}

/// The paper's *full* study — every configuration at the full workload
/// (180 images/server, 24 h trace window) — on the sweep driver. Reported
/// at threads=1 and threads=4 so `BENCH_perf.json` carries the sweep
/// fabric's scaling headline (runs/sec); the digest is consumed so the
/// whole merge is forced. On a multi-core machine the t4/t1 ratio is the
/// fabric's speedup; on a single-core CI box both variants cost the same
/// wall-clock and the numbers record that honestly.
fn study_full(configs: usize, seed: u64, threads: usize) -> u64 {
    let mut p = StudyParams::paper_main(seed);
    p.n_configs = configs;
    let runs_per_config = 1 + p.algorithms.len() as u64; // + download-all
    let results = run_study_parallel(&p, threads);
    std::hint::black_box(results.digest());
    configs as u64 * runs_per_config
}

fn main() {
    let args = parse_args();
    let scale = if args.quick { "quick" } else { "full" };
    println!("perf harness ({scale} scale, seed {})", args.seed);

    // Sizes chosen so the full run finishes in well under a minute per rep
    // even on the pre-optimization code paths.
    let (ev_n, mix_n, ps_cfgs, tq_n, study_cfgs, full_cfgs, ws_n, sr_n) = if args.quick {
        (20_000, 2_000, 2, 20_000, 1, 8, 50, 20)
    } else {
        (200_000, 20_000, 8, 200_000, 4, 300, 500, 100)
    };
    let seed = args.seed;
    let reps = args.reps;
    let study_reps = reps.min(2);
    // The full study costs ~45 ms per configuration: one rep of the
    // paper's 300 configurations is the headline, not a median of many.
    let full_reps = if args.quick { study_reps } else { 1 };

    let benches = [
        run_bench("event_queue_schedule_pop", reps, || {
            event_queue_schedule_pop(ev_n, seed)
        }),
        run_bench("event_queue_mix", reps, || event_queue_mix(mix_n, seed)),
        run_bench("placement_search_8", reps, || {
            placement_search(8, ps_cfgs, seed)
        }),
        run_bench("placement_search_24", reps, || {
            placement_search(24, ps_cfgs.div_ceil(2), seed)
        }),
        run_bench("trace_transfers", reps, || {
            trace_transfers(tq_n, 2_000, seed)
        }),
        run_bench("world_setup", study_reps, || world_setup(ws_n, seed)),
        run_bench("single_run", study_reps, || single_run(sr_n, seed)),
        run_bench("study_reduced", study_reps, || {
            study_reduced(study_cfgs, seed)
        }),
        run_bench("study_quick", study_reps, || study_quick(seed)),
        run_bench("study_quick_t2", study_reps, || {
            study_quick_threaded(seed, 2)
        }),
        run_bench("study_topo", study_reps, || study_topo(seed)),
        run_bench("study_full_t1", full_reps, || {
            study_full(full_cfgs, seed, 1)
        }),
        run_bench("study_full_t4", full_reps, || {
            study_full(full_cfgs, seed, 4)
        }),
    ];

    let rows: Vec<Json> = benches
        .iter()
        .map(|b| {
            Json::obj()
                .field("name", b.name)
                .field("iterations", b.secs.len())
                .field("units_per_iteration", b.units)
                .field("median_secs", b.median_secs())
                .field("mean_secs", b.mean_secs())
                .field("events_per_sec", b.events_per_sec())
                .field("allocs", b.alloc.allocs)
                .field("frees", b.alloc.frees)
                .field("bytes_allocated", b.alloc.bytes_allocated)
                .field("peak_bytes", b.alloc.peak_bytes)
                .field("allocs_per_unit", b.allocs_per_unit())
        })
        .collect();
    let json = Json::obj()
        .field("schema", "wadc-bench-perf-v2")
        .field("mode", scale)
        .field("seed", args.seed)
        .field("benches", rows);
    std::fs::write(&args.json, json.to_string_pretty())
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.json.display()));
    println!("results archived to {}", args.json.display());

    if args.alloc_gate {
        let mut failed = false;
        for b in &benches {
            let (limit, peak_limit) = match b.name {
                "study_quick" | "study_quick_t2" => {
                    (MAX_ALLOCS_PER_RUN_STUDY_QUICK, MAX_PEAK_BYTES_STUDY)
                }
                "study_topo" => (MAX_ALLOCS_PER_RUN_STUDY_TOPO, MAX_PEAK_BYTES_STUDY),
                "study_reduced" => (MAX_ALLOCS_PER_RUN_STUDY_REDUCED, MAX_PEAK_BYTES_STUDY),
                "study_full_t1" | "study_full_t4" => {
                    (MAX_ALLOCS_PER_RUN_STUDY_FULL, MAX_PEAK_BYTES_STUDY_FULL)
                }
                _ => continue,
            };
            let got = b.allocs_per_unit();
            if got > limit {
                eprintln!(
                    "alloc gate FAIL: {} at {:.1} allocs/run exceeds budget {:.1}",
                    b.name, got, limit
                );
                failed = true;
            } else {
                println!(
                    "alloc gate ok:   {} at {:.1} allocs/run (budget {:.1})",
                    b.name, got, limit
                );
            }
            let peak = b.alloc.peak_bytes;
            if peak > peak_limit {
                eprintln!(
                    "alloc gate FAIL: {} peaked at {} bytes, budget {}",
                    b.name, peak, peak_limit
                );
                failed = true;
            } else {
                println!(
                    "alloc gate ok:   {} peak {:.1} MiB (budget {:.0} MiB)",
                    b.name,
                    peak as f64 / (1 << 20) as f64,
                    peak_limit as f64 / (1 << 20) as f64
                );
            }
        }
        if failed {
            eprintln!("steady-state allocation regression — see DESIGN.md §6b");
            std::process::exit(1);
        }
    }
}
