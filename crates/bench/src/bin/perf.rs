//! Perf-regression harness: wall-clock throughput of the three measured
//! hot paths — the DES kernel's event queue, the placement search, and
//! monotone bandwidth-trace lookups — plus a reduced paper-main study as
//! an end-to-end proxy.
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin perf [--quick] [--reps N] [--seed S] [--json PATH]
//! ```
//!
//! Emits `BENCH_perf.json` (override with `--json`): an array of benches,
//! each `{name, iterations, median_secs, mean_secs, events_per_sec}` where
//! `events_per_sec` is the bench's natural unit of work (kernel events,
//! placement searches, trace queries, engine runs) divided by the median
//! wall time of one iteration. Timings are informational — the harness
//! fails only on panic, so CI can run it at reduced scale without flaking
//! on machine noise.
//!
//! The workloads are deterministic (fixed seeds, no wall-clock feedback),
//! so two builds of the same scale do the same work and their numbers are
//! directly comparable.

use std::path::PathBuf;
use std::time::Instant;

use wadc_bench::json::Json;
use wadc_core::algorithms::one_shot_placement;
use wadc_core::study::{run_study, StudyParams};
use wadc_plan::bandwidth::BwMatrix;
use wadc_plan::cost::CostModel;
use wadc_plan::placement::HostRoster;
use wadc_plan::tree::CombinationTree;
use wadc_sim::event::EventQueue;
use wadc_sim::rng::Rng64;
use wadc_sim::stats::median;
use wadc_sim::time::{SimDuration, SimTime};
use wadc_trace::model::BandwidthTrace;

struct Args {
    quick: bool,
    reps: usize,
    seed: u64,
    json: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        reps: 5,
        seed: 1998,
        json: PathBuf::from("BENCH_perf.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--reps" => args.reps = value("--reps").parse().expect("integer"),
            "--seed" => args.seed = value("--seed").parse().expect("integer"),
            "--json" => args.json = PathBuf::from(value("--json")),
            other => panic!("unknown flag {other}; known: --quick --reps --seed --json"),
        }
    }
    args
}

/// One bench's timings: `reps` wall-clock measurements of an iteration
/// that performs `units` units of work.
struct Bench {
    name: &'static str,
    units: u64,
    secs: Vec<f64>,
}

impl Bench {
    fn median_secs(&self) -> f64 {
        median(&self.secs).unwrap_or(0.0)
    }

    fn mean_secs(&self) -> f64 {
        self.secs.iter().sum::<f64>() / self.secs.len().max(1) as f64
    }

    fn events_per_sec(&self) -> f64 {
        let m = self.median_secs();
        if m > 0.0 {
            self.units as f64 / m
        } else {
            0.0
        }
    }
}

fn run_bench(name: &'static str, reps: usize, mut iter: impl FnMut() -> u64) -> Bench {
    let mut secs = Vec::with_capacity(reps);
    let mut units = 0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        units = iter();
        secs.push(t0.elapsed().as_secs_f64());
    }
    let b = Bench { name, units, secs };
    println!(
        "{:32} {:>10.1} units/s  (median {:.4} s, mean {:.4} s, {} reps)",
        b.name,
        b.events_per_sec(),
        b.median_secs(),
        b.mean_secs(),
        b.secs.len()
    );
    b
}

/// Kernel throughput without cancellations: schedule a pool, then a long
/// pop-one/schedule-one steady state — the engine's common case.
fn event_queue_schedule_pop(n: usize, seed: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = Rng64::seed_from_u64(seed);
    let pool = (n / 8).max(64);
    for i in 0..pool {
        q.schedule(SimTime::from_micros(rng.range_u64(1, 1_000_000)), i as u64);
    }
    let mut ops = pool as u64;
    for _ in 0..n {
        let (_, _, v) = q.pop().expect("pool is never empty");
        q.schedule_in(SimDuration::from_micros(rng.range_u64(1, 1_000_000)), v);
        ops += 2;
    }
    while q.pop().is_some() {
        ops += 1;
    }
    std::hint::black_box(q.now());
    ops
}

/// Kernel throughput with true cancellation pressure: every iteration pops
/// one event, schedules two, and cancels one remembered handle — the
/// retry/timeout pattern the fault-recovery machinery generates.
fn event_queue_mix(n: usize, seed: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = Rng64::seed_from_u64(seed);
    let mut ids = Vec::with_capacity(n + 64);
    for i in 0..64u64 {
        ids.push(q.schedule(SimTime::from_micros(rng.range_u64(1, 10_000_000)), i));
    }
    let mut ops = ids.len() as u64;
    for i in 0..n {
        if q.pop().is_some() {
            ops += 1;
        }
        for _ in 0..2 {
            let at = q.now() + SimDuration::from_micros(rng.range_u64(1, 10_000_000));
            ids.push(q.schedule(at, i as u64));
            ops += 1;
        }
        let victim = ids.swap_remove(rng.range_usize(ids.len()));
        q.cancel(victim);
        ops += 1;
    }
    while q.pop().is_some() {
        ops += 1;
    }
    std::hint::black_box(q.now());
    ops
}

/// Full one-shot placement searches over `configs` distinct bandwidth
/// matrices on an `n`-server complete binary tree.
fn placement_search(n: usize, configs: usize, seed: u64) -> u64 {
    let tree = CombinationTree::complete_binary(n).expect("power-of-two server count");
    let roster = HostRoster::one_host_per_server(n);
    let model = CostModel::paper_defaults();
    let hosts = roster.host_count();
    let mut acc = 0.0f64;
    for cfg in 0..configs {
        let mut rng = Rng64::seed_from_u64(seed ^ (cfg as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut bw = BwMatrix::new(hosts);
        for a in 0..hosts {
            for b in (a + 1)..hosts {
                bw.set(
                    wadc_plan::ids::HostId::new(a),
                    wadc_plan::ids::HostId::new(b),
                    rng.range_f64(2_000.0, 2_000_000.0),
                );
            }
        }
        let r = one_shot_placement(&tree, &roster, &bw, &model);
        acc += r.cost;
    }
    std::hint::black_box(acc);
    configs as u64
}

/// Nearly monotone `transfer_duration` queries against one long
/// multi-segment trace — the access pattern of the network layer's link
/// lookups during a run.
fn trace_transfers(queries: usize, segments: usize, seed: u64) -> u64 {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut steps = Vec::with_capacity(segments);
    let mut t = 0.0f64;
    for _ in 0..segments {
        steps.push((t, rng.range_f64(4_000.0, 4_000_000.0)));
        t += rng.range_f64(10.0, 60.0);
    }
    let trace = BandwidthTrace::from_steps(&steps).expect("valid synthetic trace");
    let horizon = SimTime::from_secs_f64(t);
    let mut at = SimTime::ZERO;
    let mut acc = 0u64;
    for _ in 0..queries {
        at += SimDuration::from_micros(rng.range_u64(100_000, 30_000_000));
        if at > horizon {
            at = SimTime::ZERO; // wrap, as a fresh run's transfers do
        }
        let d = trace.transfer_duration(262_144, at);
        acc = acc.wrapping_add(d.as_micros());
    }
    std::hint::black_box(acc);
    queries as u64
}

/// A reduced paper-main study: the end-to-end number every other bench
/// feeds into. Uses the sequential driver so the measurement is not
/// scheduler-dependent.
fn study_reduced(configs: usize, seed: u64) -> u64 {
    let mut p = StudyParams::paper_main(seed);
    p.n_configs = configs;
    p.trace_window = SimDuration::from_hours(2);
    p.workload.images_per_server = 16;
    let runs_per_config = 1 + p.algorithms.len() as u64; // + download-all
    let results = run_study(&p);
    std::hint::black_box(results.outcomes.len());
    configs as u64 * runs_per_config
}

fn main() {
    let args = parse_args();
    let scale = if args.quick { "quick" } else { "full" };
    println!("perf harness ({scale} scale, seed {})", args.seed);

    // Sizes chosen so the full run finishes in well under a minute per rep
    // even on the pre-optimization code paths.
    let (ev_n, mix_n, ps_cfgs, tq_n, study_cfgs) = if args.quick {
        (20_000, 2_000, 2, 20_000, 1)
    } else {
        (200_000, 20_000, 8, 200_000, 4)
    };
    let seed = args.seed;
    let reps = args.reps;
    let study_reps = reps.min(2);

    let benches = [
        run_bench("event_queue_schedule_pop", reps, || {
            event_queue_schedule_pop(ev_n, seed)
        }),
        run_bench("event_queue_mix", reps, || event_queue_mix(mix_n, seed)),
        run_bench("placement_search_8", reps, || {
            placement_search(8, ps_cfgs, seed)
        }),
        run_bench("placement_search_24", reps, || {
            placement_search(24, ps_cfgs.div_ceil(2), seed)
        }),
        run_bench("trace_transfers", reps, || {
            trace_transfers(tq_n, 2_000, seed)
        }),
        run_bench("study_reduced", study_reps, || {
            study_reduced(study_cfgs, seed)
        }),
    ];

    let rows: Vec<Json> = benches
        .iter()
        .map(|b| {
            Json::obj()
                .field("name", b.name)
                .field("iterations", b.secs.len())
                .field("units_per_iteration", b.units)
                .field("median_secs", b.median_secs())
                .field("mean_secs", b.mean_secs())
                .field("events_per_sec", b.events_per_sec())
        })
        .collect();
    let json = Json::obj()
        .field("schema", "wadc-bench-perf-v1")
        .field("mode", scale)
        .field("seed", args.seed)
        .field("benches", rows);
    std::fs::write(&args.json, json.to_string_pretty())
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.json.display()));
    println!("results archived to {}", args.json.display());
}
