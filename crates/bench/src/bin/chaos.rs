//! Robustness experiment: how the four placement algorithms degrade under
//! injected faults — message loss rates and random link-outage densities —
//! measured against the clean run of the same world.
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin chaos [--configs N] [--threads T] [--seed S] [--json PATH]
//! ```
//!
//! For every configuration each algorithm runs once clean, then once per
//! fault point. Reported per point and algorithm: the fraction of runs
//! that still complete, the mean completion-time inflation over the clean
//! run, and the mean retransmission count (the recovery work the retry
//! machinery had to do).

use wadc_bench::json::Json;
use wadc_bench::FigArgs;
use wadc_core::engine::Algorithm;
use wadc_core::experiment::Experiment;
use wadc_net::faults::FaultPlan;
use wadc_sim::time::SimDuration;
use wadc_trace::study::BandwidthStudy;

/// Loss-probability sweep (applied to every traffic class, probes too).
const LOSS_RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.1, 0.2];

/// Random-outage sweep: outages per hour, each ~2 minutes long.
const OUTAGE_COUNTS: [usize; 4] = [0, 2, 4, 8];

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::DownloadAll,
    Algorithm::OneShot,
    Algorithm::Global {
        period: SimDuration::from_mins(10),
    },
    Algorithm::Local {
        period: SimDuration::from_mins(10),
        extra_candidates: 2,
    },
];

/// Accumulated outcomes of one (fault point, algorithm) cell.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    runs: u64,
    completed: u64,
    /// Sum of faulty/clean completion-time ratios (completed runs only).
    slowdown_sum: f64,
    slowdown_n: u64,
    retransmits: u64,
    dropped: u64,
}

impl Cell {
    fn absorb(&mut self, other: Cell) {
        self.runs += other.runs;
        self.completed += other.completed;
        self.slowdown_sum += other.slowdown_sum;
        self.slowdown_n += other.slowdown_n;
        self.retransmits += other.retransmits;
        self.dropped += other.dropped;
    }

    fn completion_rate(&self) -> f64 {
        self.completed as f64 / self.runs.max(1) as f64
    }

    fn mean_slowdown(&self) -> f64 {
        if self.slowdown_n == 0 {
            f64::NAN
        } else {
            self.slowdown_sum / self.slowdown_n as f64
        }
    }

    fn mean_retransmits(&self) -> f64 {
        self.retransmits as f64 / self.runs.max(1) as f64
    }
}

/// The fault points of the sweep, in report order.
fn fault_points() -> Vec<(String, FaultPlan)> {
    let mut points = Vec::new();
    for p in LOSS_RATES {
        points.push((
            format!("loss {:.0}%", p * 100.0),
            FaultPlan::none().with_loss(p).with_probe_blackhole(p),
        ));
    }
    for n in OUTAGE_COUNTS {
        let mut plan = FaultPlan::none();
        if n > 0 {
            plan =
                plan.with_random_outages(n, SimDuration::from_mins(2), SimDuration::from_hours(1));
        }
        points.push((format!("outages {n}/h"), plan));
    }
    points
}

/// Runs every cell for configurations `[lo, hi)` of the study.
fn run_range(study: &BandwidthStudy, seed: u64, lo: u64, hi: u64) -> Vec<Vec<Cell>> {
    let points = fault_points();
    let mut cells = vec![vec![Cell::default(); ALGORITHMS.len()]; points.len()];
    for i in lo..hi {
        let exp = Experiment::from_study(8, study, SimDuration::from_hours(24), i, seed);
        for (a, &alg) in ALGORITHMS.iter().enumerate() {
            let clean = exp.run(alg);
            for (p, (_, plan)) in points.iter().enumerate() {
                let mut faulty_exp = exp.clone();
                faulty_exp.template_mut().faults = plan.clone();
                let r = faulty_exp.run(alg);
                let cell = &mut cells[p][a];
                cell.runs += 1;
                if r.completed {
                    cell.completed += 1;
                    if clean.completed {
                        cell.slowdown_sum +=
                            r.completion_time.as_secs_f64() / clean.completion_time.as_secs_f64();
                        cell.slowdown_n += 1;
                    }
                }
                cell.retransmits += r.net_stats.retransmits;
                cell.dropped += r.net_stats.dropped;
            }
        }
    }
    cells
}

fn main() {
    let mut args = FigArgs::parse();
    // The full sweep is (clean + 9 fault points) x 4 algorithms per
    // configuration; default to a lighter config count than the figure
    // binaries unless the caller asked for more.
    if std::env::args().all(|a| a != "--configs") {
        args.configs = 24;
    }
    let study = BandwidthStudy::default_study(args.seed);
    let points = fault_points();
    eprintln!(
        "running {} configurations x {} fault points x {} algorithms on {} threads...",
        args.configs,
        points.len(),
        ALGORITHMS.len(),
        args.threads
    );
    let t0 = std::time::Instant::now();

    let configs = args.configs as u64;
    let threads = args.threads.clamp(1, args.configs.max(1));
    let chunk = configs.div_ceil(threads as u64);
    let mut cells = vec![vec![Cell::default(); ALGORITHMS.len()]; points.len()];
    std::thread::scope(|scope| {
        let study = &study;
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let lo = (t * chunk).min(configs);
                let hi = ((t + 1) * chunk).min(configs);
                scope.spawn(move || run_range(study, args.seed, lo, hi))
            })
            .collect();
        for handle in handles {
            let partial = handle.join().expect("worker panicked");
            for (p, row) in partial.into_iter().enumerate() {
                for (a, cell) in row.into_iter().enumerate() {
                    cells[p][a].absorb(cell);
                }
            }
        }
    });
    eprintln!("done in {:.1} s", t0.elapsed().as_secs_f64());

    let mut json_rows = Vec::new();
    println!("=== robustness: completion rate / slowdown vs clean / mean retransmits ===");
    for (p, (label, _)) in points.iter().enumerate() {
        println!("\n--- {label} ---");
        for (a, alg) in ALGORITHMS.iter().enumerate() {
            let c = &cells[p][a];
            println!(
                "{:<13} completed {:>5.1}%  slowdown x{:<6.3} retransmits {:>7.1}  dropped {:>7.1}",
                alg.name(),
                c.completion_rate() * 100.0,
                c.mean_slowdown(),
                c.mean_retransmits(),
                c.dropped as f64 / c.runs.max(1) as f64,
            );
            json_rows.push(
                Json::obj()
                    .field("point", label.as_str())
                    .field("algorithm", alg.name())
                    .field("completion_rate", c.completion_rate())
                    .field("mean_slowdown", c.mean_slowdown())
                    .field("mean_retransmits", c.mean_retransmits()),
            );
        }
    }

    args.maybe_write_json(
        &Json::obj()
            .field("experiment", "chaos")
            .field("configs", args.configs)
            .field("rows", json_rows),
    );
}
