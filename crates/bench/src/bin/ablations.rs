//! Ablation studies of the design choices DESIGN.md calls out — each an
//! axis the paper fixes, varied here to quantify its contribution.
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin ablations -- [--which all|objective|knowledge|probes|ordering|tthres|monitoring|duplex|mobility|state] [--configs N]
//! ```
//!
//! - `objective`  — the paper's critical-path planning objective vs the
//!   contention-aware extension (max of critical path and busiest NIC),
//! - `knowledge`  — monitored (cache + on-demand probes) vs a perfect
//!   oracle: the cost of monitoring staleness,
//! - `probes`     — planning with free measurements vs real 16 KB probe
//!   traffic: the overhead that penalises frequent re-planning,
//! - `ordering`   — complete-binary vs left-deep vs bandwidth-aware greedy
//!   ordering, under one-shot placement (order and location interact),
//! - `tthres`     — the monitoring cache timeout `T_thres` (paper: 40 s),
//! - `state`      — the operator-state size shipped on relocation.

use std::path::PathBuf;

use wadc_bench::json::Json;
use wadc_core::algorithms::one_shot::Objective;
use wadc_core::engine::Algorithm;
use wadc_core::experiment::Experiment;
use wadc_core::knowledge::KnowledgeMode;
use wadc_mobile::registry::MobilityMode;
use wadc_plan::ordering::bandwidth_aware_binary;
use wadc_plan::placement::HostRoster;
use wadc_plan::tree::TreeShape;
use wadc_sim::time::{SimDuration, SimTime};
use wadc_trace::study::BandwidthStudy;

struct Args {
    which: String,
    configs: usize,
    seed: u64,
    json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        which: "all".to_string(),
        configs: 60,
        seed: 1998,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--which" => args.which = value("--which"),
            "--configs" => args.configs = value("--configs").parse().expect("integer"),
            "--seed" => args.seed = value("--seed").parse().expect("integer"),
            "--json" => args.json = Some(PathBuf::from(value("--json"))),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// A named ablation variant: a closure producing the metric for one world.
type Variant<'a> = (&'a str, Box<dyn Fn(&Experiment) -> f64>);

/// Runs `variants` against `configs` paper-style worlds; returns the mean
/// speedup over download-all per variant.
fn sweep(
    study: &BandwidthStudy,
    configs: usize,
    seed: u64,
    variants: &[Variant<'_>],
) -> Vec<(String, f64)> {
    let mut sums = vec![0.0; variants.len()];
    for i in 0..configs {
        let exp = Experiment::from_study(8, study, SimDuration::from_hours(24), i as u64, seed);
        for (j, (_, run)) in variants.iter().enumerate() {
            sums[j] += run(&exp);
        }
    }
    variants
        .iter()
        .zip(sums)
        .map(|((name, _), s)| (name.to_string(), s / configs as f64))
        .collect()
}

fn speedup(exp: &Experiment, alg: Algorithm) -> f64 {
    let da = exp.run(Algorithm::DownloadAll);
    exp.run(alg).speedup_over(&da)
}

fn report(title: &str, rows: &[(String, f64)], results: &mut Vec<Json>) {
    println!("\n=== ablation: {title} ===");
    for (name, mean) in rows {
        println!("{name:<40} mean speedup {mean:.3}");
    }
    let rows: Vec<Json> = rows
        .iter()
        .map(|(n, m)| {
            Json::obj()
                .field("variant", n.as_str())
                .field("mean_speedup", *m)
        })
        .collect();
    results.push(Json::obj().field("ablation", title).field("rows", rows));
}

fn main() {
    let args = parse_args();
    let study = BandwidthStudy::default_study(args.seed);
    let configs = args.configs;
    let seed = args.seed;
    let mut results = Vec::new();
    let all = args.which == "all";

    if all || args.which == "objective" {
        let rows = sweep(
            &study,
            configs,
            seed,
            &[
                (
                    "one-shot / critical-path objective",
                    Box::new(|e: &Experiment| speedup(e, Algorithm::OneShot)),
                ),
                (
                    "one-shot / contention-aware objective",
                    Box::new(|e: &Experiment| {
                        speedup(
                            &e.clone().with_objective(Objective::Contended),
                            Algorithm::OneShot,
                        )
                    }),
                ),
                (
                    "global / critical-path objective",
                    Box::new(|e: &Experiment| speedup(e, Algorithm::global_default())),
                ),
                (
                    "global / contention-aware objective",
                    Box::new(|e: &Experiment| {
                        speedup(
                            &e.clone().with_objective(Objective::Contended),
                            Algorithm::global_default(),
                        )
                    }),
                ),
            ],
        );
        report(
            "planning objective (paper vs contention-aware)",
            &rows,
            &mut results,
        );
    }

    if all || args.which == "knowledge" {
        let rows = sweep(
            &study,
            configs,
            seed,
            &[
                (
                    "global / monitored knowledge",
                    Box::new(|e: &Experiment| speedup(e, Algorithm::global_default())),
                ),
                (
                    "global / oracle knowledge",
                    Box::new(|e: &Experiment| {
                        speedup(
                            &e.clone().with_knowledge(KnowledgeMode::Oracle),
                            Algorithm::global_default(),
                        )
                    }),
                ),
                (
                    "global / NWS-style forecasts",
                    Box::new(|e: &Experiment| {
                        speedup(
                            &e.clone().with_knowledge(KnowledgeMode::Forecast),
                            Algorithm::global_default(),
                        )
                    }),
                ),
            ],
        );
        report(
            "planner knowledge (monitoring staleness)",
            &rows,
            &mut results,
        );
    }

    if all || args.which == "probes" {
        let mk = |probe_bytes: u64, mins: u64| {
            move |e: &Experiment| {
                let mut e = e.clone();
                e.template_mut().probe_bytes = probe_bytes;
                speedup(
                    &e,
                    Algorithm::Global {
                        period: SimDuration::from_mins(mins),
                    },
                )
            }
        };
        let rows = sweep(
            &study,
            configs,
            seed,
            &[
                ("global 2 min / free measurements", Box::new(mk(0, 2))),
                (
                    "global 2 min / 16 KB probe traffic",
                    Box::new(mk(16 * 1024, 2)),
                ),
                ("global 10 min / free measurements", Box::new(mk(0, 10))),
                (
                    "global 10 min / 16 KB probe traffic",
                    Box::new(mk(16 * 1024, 10)),
                ),
            ],
        );
        report("on-demand probe traffic", &rows, &mut results);
    }

    if all || args.which == "ordering" {
        let rows = sweep(
            &study,
            configs,
            seed,
            &[
                (
                    "one-shot / complete binary",
                    Box::new(|e: &Experiment| speedup(e, Algorithm::OneShot)),
                ),
                (
                    "one-shot / left-deep",
                    Box::new(|e: &Experiment| {
                        speedup(
                            &e.clone().with_tree_shape(TreeShape::LeftDeep),
                            Algorithm::OneShot,
                        )
                    }),
                ),
                (
                    "one-shot / bandwidth-aware ordering",
                    Box::new(|e: &Experiment| {
                        let roster = HostRoster::one_host_per_server(8);
                        let tree =
                            bandwidth_aware_binary(&roster, e.links().oracle_at(SimTime::ZERO))
                                .expect("8 servers");
                        let da = e.run(Algorithm::DownloadAll);
                        e.run_with_tree(Algorithm::OneShot, tree).speedup_over(&da)
                    }),
                ),
            ],
        );
        report(
            "combination ordering (order vs location)",
            &rows,
            &mut results,
        );
    }

    if all || args.which == "tthres" {
        let mk = |secs: u64| {
            move |e: &Experiment| {
                let mut e = e.clone();
                e.template_mut().monitor.t_thres = SimDuration::from_secs(secs);
                speedup(&e, Algorithm::global_default())
            }
        };
        let rows = sweep(
            &study,
            configs,
            seed,
            &[
                ("global / T_thres 10 s", Box::new(mk(10))),
                ("global / T_thres 40 s (paper)", Box::new(mk(40))),
                ("global / T_thres 120 s", Box::new(mk(120))),
                ("global / T_thres 600 s", Box::new(mk(600))),
            ],
        );
        report("monitoring cache timeout T_thres", &rows, &mut results);
    }

    if all || args.which == "monitoring" {
        let mk = |interval_secs: Option<u64>| {
            move |e: &Experiment| {
                let mut e = e.clone();
                e.template_mut().active_monitoring = interval_secs.map(SimDuration::from_secs);
                speedup(&e, Algorithm::global_default())
            }
        };
        let rows = sweep(
            &study,
            configs,
            seed,
            &[
                ("global / on-demand probing (paper)", Box::new(mk(None))),
                ("global / active probing every 30 s", Box::new(mk(Some(30)))),
                (
                    "global / active probing every 120 s",
                    Box::new(mk(Some(120))),
                ),
            ],
        );
        report(
            "monitoring style (on-demand vs Komodo/NWS periodic)",
            &rows,
            &mut results,
        );
    }

    if all || args.which == "duplex" {
        let mk = |capacity: usize, alg: Algorithm| {
            move |e: &Experiment| {
                let mut e = e.clone();
                e.template_mut().net.nic_capacity = capacity;
                speedup(&e, alg)
            }
        };
        let rows = sweep(
            &study,
            configs,
            seed,
            &[
                (
                    "global / half-duplex NIC (paper)",
                    Box::new(mk(1, Algorithm::global_default())),
                ),
                (
                    "global / full-duplex NIC",
                    Box::new(mk(2, Algorithm::global_default())),
                ),
                (
                    "global / 4-channel NIC",
                    Box::new(mk(4, Algorithm::global_default())),
                ),
            ],
        );
        report(
            "NIC capacity (relaxing the single-interface assumption)",
            &rows,
            &mut results,
        );
    }

    if all || args.which == "mobility" {
        let mk = |mode: MobilityMode, code: u64| {
            move |e: &Experiment| {
                let mut e = e.clone();
                e.template_mut().mobility = mode;
                e.template_mut().code_package_bytes = code;
                speedup(
                    &e,
                    Algorithm::Global {
                        period: SimDuration::from_mins(2),
                    },
                )
            }
        };
        let rows = sweep(
            &study,
            configs,
            seed,
            &[
                (
                    "global 2 min / code pre-installed",
                    Box::new(mk(MobilityMode::PreInstalled, 0)),
                ),
                (
                    "global 2 min / mobile objects, 24 KB code",
                    Box::new(mk(MobilityMode::MobileObjects, 24 << 10)),
                ),
                (
                    "global 2 min / mobile objects, 256 KB code",
                    Box::new(mk(MobilityMode::MobileObjects, 256 << 10)),
                ),
            ],
        );
        report(
            "mobility substrate (pre-installed vs mobile objects)",
            &rows,
            &mut results,
        );
    }

    if all || args.which == "state" {
        let mk = |bytes: u64| {
            move |e: &Experiment| {
                let mut e = e.clone();
                e.template_mut().operator_state_bytes = bytes;
                speedup(
                    &e,
                    Algorithm::Global {
                        period: SimDuration::from_mins(2),
                    },
                )
            }
        };
        let rows = sweep(
            &study,
            configs,
            seed,
            &[
                ("global 2 min / 4 KB operator state", Box::new(mk(4 << 10))),
                (
                    "global 2 min / 64 KB operator state",
                    Box::new(mk(64 << 10)),
                ),
                (
                    "global 2 min / 512 KB operator state",
                    Box::new(mk(512 << 10)),
                ),
                ("global 2 min / 4 MB operator state", Box::new(mk(4 << 20))),
            ],
        );
        report(
            "operator state size (light-move assumption)",
            &rows,
            &mut results,
        );
    }

    if let Some(path) = &args.json {
        std::fs::write(path, Json::Arr(results).to_string_pretty())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("\nresults archived to {}", path.display());
    }
}
