//! Figure 8: "Impact of variation in the number of servers on the
//! performance of relocation algorithms" — servers 4 → 32, each point the
//! average speedup over all configurations. The paper found the global
//! algorithm scaled best.
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin fig8 [--configs N] [--json PATH]
//! ```

use wadc_bench::json::Json;
use wadc_bench::FigArgs;
use wadc_core::study::{run_study_parallel, StudyParams};

fn main() {
    let args = FigArgs::parse();
    let server_counts = [4usize, 8, 16, 32];
    let mut per_alg: Vec<Vec<f64>> = vec![Vec::new(); 3];

    for &n in &server_counts {
        let mut params = StudyParams::paper_main(args.seed);
        params.n_configs = args.configs;
        params.n_servers = n;
        eprintln!(
            "running {} configurations with {n} servers on {} threads...",
            params.n_configs, args.threads
        );
        let t0 = std::time::Instant::now();
        let results = run_study_parallel(&params, args.threads);
        eprintln!("  done in {:.1} s", t0.elapsed().as_secs_f64());
        for (alg, series) in per_alg.iter_mut().enumerate() {
            series.push(results.mean_speedup(alg));
        }
    }

    println!("=== Figure 8: average speedup vs number of servers ===");
    println!("servers  one-shot  global  local");
    for (i, &n) in server_counts.iter().enumerate() {
        println!(
            "{n:>7}  {:>8.2}  {:>6.2}  {:>5.2}",
            per_alg[0][i], per_alg[1][i], per_alg[2][i]
        );
    }
    let last = server_counts.len() - 1;
    println!(
        "\nat 32 servers: global/one-shot = {:.2}, global/local = {:.2} (paper: global scales best)",
        per_alg[1][last] / per_alg[0][last],
        per_alg[1][last] / per_alg[2][last]
    );

    args.maybe_write_json(
        &Json::obj()
            .field("figure", 8)
            .field("configs", args.configs)
            .field("servers", server_counts.as_slice())
            .field(
                "avg_speedup",
                Json::obj()
                    .field("one_shot", per_alg[0].as_slice())
                    .field("global", per_alg[1].as_slice())
                    .field("local", per_alg[2].as_slice()),
            ),
    );
}
