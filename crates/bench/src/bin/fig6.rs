//! Figure 6: "Performance of operator relocation algorithms for 300
//! network configurations" — sorted speedup curves of one-shot vs global
//! (left graph) and global vs local (right graph), plus the mean
//! inter-arrival times the paper quotes in the text (101.2 s download-all,
//! 24.6 s one-shot, 22 s local, 17.1 s global).
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin fig6 [--configs N] [--json PATH]
//! ```

use wadc_bench::json::Json;
use wadc_bench::{print_series, print_summary, FigArgs};
use wadc_core::study::{run_study_parallel, StudyParams};

const ONE_SHOT: usize = 0;
const GLOBAL: usize = 1;
const LOCAL: usize = 2;

fn main() {
    let args = FigArgs::parse();
    let mut params = StudyParams::paper_main(args.seed);
    params.n_configs = args.configs;
    eprintln!(
        "running {} configurations x 4 algorithms on {} threads...",
        params.n_configs, args.threads
    );
    let t0 = std::time::Instant::now();
    let results = run_study_parallel(&params, args.threads);
    eprintln!("done in {:.1} s", t0.elapsed().as_secs_f64());

    // Left graph: one-shot and global, configurations sorted by the global
    // algorithm's speedup (the paper sorts "by the performance of one of
    // the algorithms being compared").
    let mut order: Vec<usize> = (0..results.outcomes.len()).collect();
    order.sort_by(|&a, &b| {
        results.outcomes[a]
            .speedup(GLOBAL)
            .partial_cmp(&results.outcomes[b].speedup(GLOBAL))
            .expect("finite speedups")
    });
    let sorted_by_global = |alg: usize| -> Vec<f64> {
        order
            .iter()
            .map(|&i| results.outcomes[i].speedup(alg))
            .collect()
    };

    println!("=== Figure 6 (left): one-shot vs global, sorted by global speedup ===");
    print_series("one-shot", &sorted_by_global(ONE_SHOT));
    print_series("global", &sorted_by_global(GLOBAL));

    println!("=== Figure 6 (right): local vs global, sorted by global speedup ===");
    print_series("local", &sorted_by_global(LOCAL));
    print_series("global", &sorted_by_global(GLOBAL));

    println!("=== summary ===");
    print_summary("one-shot speedup", &results.speedups(ONE_SHOT));
    print_summary("global speedup", &results.speedups(GLOBAL));
    print_summary("local speedup", &results.speedups(LOCAL));
    println!(
        "median global/one-shot ratio: {:.3} (paper: global adds ~40% median over one-shot)",
        results.median_ratio(GLOBAL, ONE_SHOT)
    );
    println!(
        "median global/local ratio:    {:.3} (paper: ~1.25)",
        results.median_ratio(GLOBAL, LOCAL)
    );
    println!("\nmean image inter-arrival at the client (paper: 101.2 / 24.6 / 22 / 17.1 s):");
    println!(
        "  download-all {:.1} s | one-shot {:.1} s | local {:.1} s | global {:.1} s",
        results.mean_interarrival_download_all(),
        results.mean_interarrival(ONE_SHOT),
        results.mean_interarrival(LOCAL),
        results.mean_interarrival(GLOBAL),
    );

    args.maybe_write_json(
        &Json::obj()
            .field("figure", 6)
            .field("configs", params.n_configs)
            .field(
                "sorted_by_global",
                Json::obj()
                    .field("one_shot", sorted_by_global(ONE_SHOT))
                    .field("global", sorted_by_global(GLOBAL))
                    .field("local", sorted_by_global(LOCAL)),
            )
            .field(
                "median_ratio_global_one_shot",
                results.median_ratio(GLOBAL, ONE_SHOT),
            )
            .field(
                "median_ratio_global_local",
                results.median_ratio(GLOBAL, LOCAL),
            )
            .field(
                "interarrival_secs",
                Json::obj()
                    .field("download_all", results.mean_interarrival_download_all())
                    .field("one_shot", results.mean_interarrival(ONE_SHOT))
                    .field("local", results.mean_interarrival(LOCAL))
                    .field("global", results.mean_interarrival(GLOBAL)),
            ),
    );
}
