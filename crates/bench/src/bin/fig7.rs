//! Figure 7: "Impact of considering additional (randomly selected)
//! locations on the performance of the local relocation algorithm" — the
//! local algorithm with k = 0..6 extra candidate sites per decision; each
//! point is the average speedup over all configurations. The paper found
//! no significant difference.
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin fig7 [--configs N] [--json PATH]
//! ```

use wadc_bench::json::Json;
use wadc_bench::FigArgs;
use wadc_core::engine::Algorithm;
use wadc_core::study::{run_study_parallel, StudyParams};

fn main() {
    let args = FigArgs::parse();
    let mut params = StudyParams::paper_main(args.seed);
    params.n_configs = args.configs;
    params.algorithms = (0..=6)
        .map(|k| Algorithm::Local {
            period: Algorithm::DEFAULT_PERIOD,
            extra_candidates: k,
        })
        .collect();
    eprintln!(
        "running {} configurations x (download-all + 7 local variants) on {} threads...",
        params.n_configs, args.threads
    );
    let t0 = std::time::Instant::now();
    let results = run_study_parallel(&params, args.threads);
    eprintln!("done in {:.1} s", t0.elapsed().as_secs_f64());

    println!("=== Figure 7: local algorithm, k additional random candidate sites ===");
    println!("k  avg speedup over download-all");
    let mut series = Vec::new();
    for k in 0..=6usize {
        let mean = results.mean_speedup(k);
        series.push(mean);
        println!("{k}  {mean:.3}");
    }
    let spread = series.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - series.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nspread across k: {spread:.3} ({:.1}% of the k=0 speedup) — the paper found \"no significant difference\"",
        100.0 * spread / series[0]
    );

    args.maybe_write_json(
        &Json::obj()
            .field("figure", 7)
            .field("configs", params.n_configs)
            .field("k", (0..=6).collect::<Vec<i32>>())
            .field("avg_speedup", series),
    );
}
