//! Figure 2: "Variation in application-level network bandwidth" — the
//! bandwidth of one host pair over the first ten minutes and over the full
//! two-day trace.
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin fig2 [--seed S] [--json PATH]
//! ```

use wadc_bench::json::Json;
use wadc_bench::FigArgs;
use wadc_sim::time::{SimDuration, SimTime};
use wadc_trace::stats::{mean_change_interval, summarize};
use wadc_trace::study::BandwidthStudy;

fn main() {
    let args = FigArgs::parse();
    let study = BandwidthStudy::default_study(args.seed);
    let hosts = study.hosts();

    // The paper plots Wisconsin - UCLA; our study's closest analogue is
    // the midwest - west-coast pair.
    let wisc = hosts
        .iter()
        .position(|h| h.name == "wisc")
        .expect("study host");
    let ucla = hosts
        .iter()
        .position(|h| h.name == "ucla")
        .expect("study host");
    let trace = study.trace(wisc, ucla).expect("complete study");

    println!("=== Figure 2 (left): first ten minutes, samples every 20 s ===");
    let mut ten_min = Vec::new();
    for k in 0..30 {
        let t = SimTime::from_secs(k * 20);
        let bw = trace.bandwidth_at(t);
        ten_min.push(bw);
        println!("{:>4} s  {:>8.1} KB/s", k * 20, bw / 1024.0);
    }

    println!("\n=== Figure 2 (right): full two-day trace, samples every 30 min ===");
    let mut two_day = Vec::new();
    for k in 0..96 {
        let t = SimTime::from_secs(k * 1800);
        let bw = trace.bandwidth_at(t);
        two_day.push(bw);
        println!("{:>5.1} h  {:>8.1} KB/s", k as f64 * 0.5, bw / 1024.0);
    }

    let summary = summarize(trace, SimDuration::from_hours(48));
    println!("\n=== trace characterisation ===");
    println!(
        "mean {:.1} KB/s, range {:.1}..{:.1} KB/s, cv {:.2}",
        summary.mean_bytes_per_sec / 1024.0,
        summary.min_bytes_per_sec / 1024.0,
        summary.max_bytes_per_sec / 1024.0,
        summary.coefficient_of_variation
    );
    let change = mean_change_interval(trace, 0.10).expect("variable trace");
    println!(
        "mean time between >=10% changes: {:.0} s (paper: ~2 minutes; basis for T_thres = 40 s)",
        change.as_secs_f64()
    );

    args.maybe_write_json(
        &Json::obj()
            .field("figure", 2)
            .field("pair", vec!["wisc", "ucla"])
            .field("ten_minutes_bytes_per_sec", ten_min)
            .field("two_days_bytes_per_sec", two_day)
            .field("mean_change_interval_secs", change.as_secs_f64())
            .field(
                "summary",
                Json::obj()
                    .field("mean", summary.mean_bytes_per_sec)
                    .field("min", summary.min_bytes_per_sec)
                    .field("max", summary.max_bytes_per_sec)
                    .field("cv", summary.coefficient_of_variation),
            ),
    );
}
