//! Figure 9: "Impact of variation in relocation frequency" — the global
//! algorithm at five relocation periods between two minutes and an hour;
//! each point the average speedup over all configurations. The paper found
//! a 5–10 minute period best.
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin fig9 [--configs N] [--json PATH]
//! ```

use wadc_bench::json::Json;
use wadc_bench::FigArgs;
use wadc_core::engine::Algorithm;
use wadc_core::study::{run_study_parallel, StudyParams};
use wadc_sim::time::SimDuration;

fn main() {
    let args = FigArgs::parse();
    let periods_min = [2u64, 5, 10, 30, 60];
    let mut params = StudyParams::paper_main(args.seed);
    params.n_configs = args.configs;
    params.algorithms = periods_min
        .iter()
        .map(|&m| Algorithm::Global {
            period: SimDuration::from_mins(m),
        })
        .collect();
    eprintln!(
        "running {} configurations x (download-all + 5 global periods) on {} threads...",
        params.n_configs, args.threads
    );
    let t0 = std::time::Instant::now();
    let results = run_study_parallel(&params, args.threads);
    eprintln!("done in {:.1} s", t0.elapsed().as_secs_f64());

    println!("=== Figure 9: global algorithm, relocation period sweep ===");
    println!("period (min)  avg speedup over download-all");
    let mut series = Vec::new();
    for (i, &m) in periods_min.iter().enumerate() {
        let mean = results.mean_speedup(i);
        series.push(mean);
        println!("{m:>12}  {mean:.3}");
    }
    let best = periods_min[series
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty")
        .0];
    println!("\nbest period: {best} min (paper: 5-10 minutes)");

    args.maybe_write_json(
        &Json::obj()
            .field("figure", 9)
            .field("configs", params.n_configs)
            .field("period_minutes", periods_min.as_slice())
            .field("avg_speedup", series)
            .field("best_period_minutes", best),
    );
}
