//! Figure 10: "Impact of combination order" — global and local rerun with
//! a left-deep combination tree instead of the complete binary tree; the
//! paper found the complete binary tree lets either relocation algorithm
//! do better.
//!
//! ```sh
//! cargo run --release -p wadc-bench --bin fig10 [--configs N] [--json PATH]
//! ```

use wadc_bench::json::Json;
use wadc_bench::{print_series, print_summary, FigArgs};
use wadc_core::engine::Algorithm;
use wadc_core::study::{run_study_parallel, StudyParams, StudyResults};
use wadc_plan::tree::TreeShape;

const GLOBAL: usize = 0;
const LOCAL: usize = 1;

fn run_shape(args: &FigArgs, shape: TreeShape) -> StudyResults {
    let mut params = StudyParams::paper_main(args.seed);
    params.n_configs = args.configs;
    params.tree_shape = shape;
    params.algorithms = vec![Algorithm::global_default(), Algorithm::local_default()];
    eprintln!(
        "running {} configurations with a {shape:?} tree on {} threads...",
        params.n_configs, args.threads
    );
    let t0 = std::time::Instant::now();
    let results = run_study_parallel(&params, args.threads);
    eprintln!("  done in {:.1} s", t0.elapsed().as_secs_f64());
    results
}

fn main() {
    let args = FigArgs::parse();
    let binary = run_shape(&args, TreeShape::CompleteBinary);
    let left_deep = run_shape(&args, TreeShape::LeftDeep);

    // Sort configurations by the binary-tree speedup, as the paper does,
    // and emit each algorithm's pair of curves on that common order.
    for (alg, name) in [(GLOBAL, "global"), (LOCAL, "local")] {
        let mut order: Vec<usize> = (0..binary.outcomes.len()).collect();
        order.sort_by(|&a, &b| {
            binary.outcomes[a]
                .speedup(alg)
                .partial_cmp(&binary.outcomes[b].speedup(alg))
                .expect("finite speedups")
        });
        let binary_curve: Vec<f64> = order
            .iter()
            .map(|&i| binary.outcomes[i].speedup(alg))
            .collect();
        let left_curve: Vec<f64> = order
            .iter()
            .map(|&i| left_deep.outcomes[i].speedup(alg))
            .collect();
        println!("=== Figure 10 ({name}): sorted by complete-binary speedup ===");
        print_series(&format!("{name}-complete-binary"), &binary_curve);
        print_series(&format!("{name}-left-deep"), &left_curve);
        print_summary(&format!("{name} binary"), &binary_curve);
        print_summary(&format!("{name} left-deep"), &left_curve);
        println!();
    }

    println!(
        "mean speedups: global binary {:.2} vs left-deep {:.2}; local binary {:.2} vs left-deep {:.2}",
        binary.mean_speedup(GLOBAL),
        left_deep.mean_speedup(GLOBAL),
        binary.mean_speedup(LOCAL),
        left_deep.mean_speedup(LOCAL),
    );
    println!("(paper: the complete binary ordering adapts better for both algorithms)");

    args.maybe_write_json(
        &Json::obj()
            .field("figure", 10)
            .field("configs", args.configs)
            .field(
                "mean_speedup",
                Json::obj()
                    .field("global_binary", binary.mean_speedup(GLOBAL))
                    .field("global_left_deep", left_deep.mean_speedup(GLOBAL))
                    .field("local_binary", binary.mean_speedup(LOCAL))
                    .field("local_left_deep", left_deep.mean_speedup(LOCAL)),
            )
            .field("global_binary", binary.sorted_speedups(GLOBAL))
            .field("global_left_deep", left_deep.sorted_speedups(GLOBAL))
            .field("local_binary", binary.sorted_speedups(LOCAL))
            .field("local_left_deep", left_deep.sorted_speedups(LOCAL)),
    );
}
