//! A minimal JSON value for figure archives.
//!
//! The figure binaries archive their series with `--json PATH`. This
//! module is the whole serializer: a value enum, `From` conversions for
//! the types the figures emit, and a pretty printer. It exists so the
//! workspace carries no external serialization dependency.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be populated with [`Json::field`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a key to an object, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders with two-space indentation and a trailing newline, the
    /// layout the figure archives have always used.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Display of f64 is the shortest exact round-trip form.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.render(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.render(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(n: $t) -> Json {
                Json::Num(n as f64)
            }
        }
    )*};
}
from_int!(i32, i64, u32, u64, usize);

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Json>> From<&[T]> for Json {
    fn from(items: &[T]) -> Json {
        Json::Arr(items.iter().cloned().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj()
            .field("figure", 2)
            .field("pair", vec!["a", "b"])
            .field("series", vec![1.5, 2.0])
            .field("summary", Json::obj().field("mean", 1.75));
        let text = v.to_string_pretty();
        assert!(text.starts_with("{\n  \"figure\": 2,"));
        assert!(text.contains("\"pair\": [\n    \"a\",\n    \"b\"\n  ]"));
        assert!(text.contains("\"summary\": {\n    \"mean\": 1.75\n  }"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::from(300usize).to_string_pretty(), "300\n");
        assert_eq!(Json::from(2.5).to_string_pretty(), "2.5\n");
    }

    #[test]
    fn round_trip_precision() {
        // Display of f64 is shortest-round-trip: parsing it back is exact.
        let x = 0.1 + 0.2;
        let text = Json::Num(x).to_string_pretty();
        assert_eq!(text.trim().parse::<f64>().unwrap(), x);
    }

    #[test]
    fn escapes_strings() {
        let v = Json::from("a\"b\\c\nd");
        assert_eq!(v.to_string_pretty(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).to_string_pretty(), "null\n");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::obj().to_string_pretty(), "{}\n");
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]\n");
    }
}
