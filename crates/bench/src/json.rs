//! The workspace JSON value, re-exported.
//!
//! The serializer the figure archives use began life in this module and
//! moved to [`wadc_obs::json`] when the trace exporters needed it too.
//! This re-export keeps the `wadc_bench::json::Json` path (and every
//! figure binary) working unchanged.

pub use wadc_obs::json::Json;
