//! Quickstart: compare the four placement strategies on one small
//! configuration.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wadc::core::engine::Algorithm;
use wadc::core::experiment::Experiment;
use wadc::sim::time::SimDuration;

fn main() {
    // A small world: 4 servers + 1 client, 8 images of ~16 KB each, links
    // drawn from a synthetic wide-area trace pool. Everything is seeded,
    // so this prints the same numbers every run.
    let exp = Experiment::quick(4, 2);

    let algorithms = [
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global {
            period: SimDuration::from_secs(60),
        },
        Algorithm::Local {
            period: SimDuration::from_secs(60),
            extra_candidates: 0,
        },
    ];

    println!("strategy      completion  mean inter-arrival  relocations");
    let baseline = exp.run(Algorithm::DownloadAll);
    for alg in algorithms {
        let r = exp.run(alg);
        assert!(r.completed, "{} failed to complete", alg.name());
        println!(
            "{:<13} {:>8.1} s  {:>16.2} s  {:>11}   ({:.2}x vs download-all)",
            alg.name(),
            r.completion_time.as_secs_f64(),
            r.mean_interarrival_secs(),
            r.relocations,
            r.speedup_over(&baseline),
        );
    }
}
