//! Hurricane-imagery composition: the application itself, run on real
//! pixels.
//!
//! The simulation engine only tracks image *sizes*; this example runs the
//! actual composition operator the paper describes (pairwise pixel
//! selection with expansion of the smaller image) over a complete binary
//! combination tree, on synthetic satellite passes, and reports what the
//! operators at each tree level produced.
//!
//! ```sh
//! cargo run --release --example hurricane_composition
//! ```

use wadc::app::compose::{compose, compose_secs, SelectRule, PAPER_SECS_PER_PIXEL};
use wadc::app::image::{Image, SizeDistribution};
use wadc::plan::ids::NodeId;
use wadc::plan::tree::{CombinationTree, NodeKind};
use wadc::sim::rng::Rng64;

fn main() {
    let n_servers = 8;
    let tree = CombinationTree::complete_binary(n_servers).expect("8 servers is plenty");
    let dist = SizeDistribution::paper_defaults();
    let mut rng = Rng64::seed_from_u64(2026);

    // One "satellite pass" per server, sizes from the paper's measured
    // distribution (Normal(128 KB, 25%)), scaled down 16× so the example
    // runs instantly.
    let passes: Vec<Image> = (0..n_servers)
        .map(|s| {
            let mut dims = dist.sample(&mut rng);
            dims = wadc::app::image::ImageDims::new(dims.width / 4, dims.height / 4);
            Image::synthetic(dims, 7000 + s as u64)
        })
        .collect();
    for (s, img) in passes.iter().enumerate() {
        println!(
            "server {s}: {}x{} ({} KB)",
            img.dims().width,
            img.dims().height,
            img.dims().bytes() / 1024
        );
    }

    // Evaluate the tree bottom-up: servers yield their pass, operators
    // compose their children.
    let mut outputs: Vec<Option<Image>> = vec![None; tree.nodes().len()];
    let mut modelled_compute = 0.0;
    for node_id in tree.postorder() {
        let node = tree.node(node_id);
        let out = match node.kind {
            NodeKind::Server(s) => passes[s].clone(),
            NodeKind::Operator(op) => {
                let take = |slot: &mut Option<Image>| slot.take().expect("children evaluated");
                let left = take(&mut outputs[node.children[0].index()]);
                let right = take(&mut outputs[node.children[1].index()]);
                let composed = compose(&left, &right, SelectRule::Max);
                modelled_compute += compose_secs(composed.dims(), PAPER_SECS_PER_PIXEL);
                println!(
                    "operator {op} (level {}): {}x{} + {}x{} -> {}x{}",
                    node.level,
                    left.dims().width,
                    left.dims().height,
                    right.dims().width,
                    right.dims().height,
                    composed.dims().width,
                    composed.dims().height,
                );
                composed
            }
            NodeKind::Client => take_child(&tree, &mut outputs, node_id),
        };
        outputs[node_id.index()] = Some(out);
    }

    let final_image = outputs[tree.root().index()].take().expect("root evaluated");
    let mean: f64 = final_image.pixels().iter().map(|&p| p as f64).sum::<f64>()
        / final_image.dims().pixels() as f64;
    println!(
        "\ncomposite delivered to client: {}x{} ({} KB), mean brightness {mean:.1}",
        final_image.dims().width,
        final_image.dims().height,
        final_image.dims().bytes() / 1024,
    );
    println!(
        "modelled composition cost at 7 us/pixel: {modelled_compute:.3} s across {} operators",
        tree.operator_count()
    );

    // Maximum-value compositing brightens: every output pixel is >= both
    // inputs' pixels, so the composite is at least as bright as any pass.
    for (s, img) in passes.iter().enumerate() {
        let pass_mean: f64 =
            img.pixels().iter().map(|&p| p as f64).sum::<f64>() / img.dims().pixels() as f64;
        assert!(
            mean >= pass_mean - 1.0,
            "composite dimmer than pass {s} — compositing is broken"
        );
    }
}

fn take_child(tree: &CombinationTree, outputs: &mut [Option<Image>], node: NodeId) -> Image {
    let child = tree.node(node).children[0];
    outputs[child.index()].take().expect("child evaluated")
}
