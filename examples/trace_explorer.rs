//! Explore the synthetic Internet bandwidth study: per-pair summaries, the
//! ≥10%-change-interval statistic the paper calibrated `T_thres` against,
//! and JSON round-tripping of a trace.
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use wadc::sim::time::{SimDuration, SimTime};
use wadc::trace::io::{load_trace, save_trace};
use wadc::trace::stats::{mean_change_interval, summarize};
use wadc::trace::study::BandwidthStudy;

fn main() {
    let study = BandwidthStudy::default_study(7);
    let hosts = study.hosts();
    let window = SimDuration::from_hours(12);

    println!("pair                  mean bw    min..max (KB/s)   cv     >=10% change every");
    let mut change_intervals = Vec::new();
    for i in 0..hosts.len() {
        for j in (i + 1)..hosts.len() {
            let tr = study.trace(i, j).expect("study is complete");
            let s = summarize(tr, window);
            if let Some(secs) = s.mean_change_interval_secs {
                change_intervals.push(secs);
            }
            // Print a representative subset to keep the output readable.
            if i == 0 {
                println!(
                    "{:<9} - {:<9} {:>7.1}    {:>5.1}..{:<6.1}   {:>4.2}   {:>6.0} s",
                    hosts[i].name,
                    hosts[j].name,
                    s.mean_bytes_per_sec / 1024.0,
                    s.min_bytes_per_sec / 1024.0,
                    s.max_bytes_per_sec / 1024.0,
                    s.coefficient_of_variation,
                    s.mean_change_interval_secs.unwrap_or(f64::NAN),
                );
            }
        }
    }
    let mean_change = change_intervals.iter().sum::<f64>() / change_intervals.len() as f64;
    println!(
        "\nacross all {} pairs: mean time between >=10% bandwidth changes = {:.0} s",
        study.pair_count(),
        mean_change
    );
    println!("(the paper measured ~2 minutes and chose T_thres = 40 s from it)");

    // Figure-2 style: the first 10 minutes of one transatlantic pair.
    let tr = study.trace(0, 7).expect("umd - inria");
    println!("\numd - inria, first 10 minutes (bandwidth every 60 s):");
    for minute in 0..10 {
        let t = SimTime::from_secs(minute * 60);
        let bw = tr.bandwidth_at(t) / 1024.0;
        let bar = "#".repeat((bw / 2.0).min(60.0) as usize);
        println!("{:>3} min {:>7.1} KB/s {bar}", minute, bw);
    }

    // Persist and reload the noon segment.
    let noon_segment = tr.extract(SimTime::from_secs(12 * 3600), SimDuration::from_hours(6));
    let path = std::env::temp_dir().join("wadc-umd-inria-noon.json");
    save_trace(&noon_segment, &path).expect("writable temp dir");
    let reloaded = load_trace(&path).expect("just wrote it");
    println!(
        "\nsaved noon segment to {} ({} samples), reload OK: {} samples, {:?} mean change",
        path.display(),
        noon_segment.len(),
        reloaded.len(),
        mean_change_interval(&reloaded, 0.10).map(|d| format!("{:.0} s", d.as_secs_f64())),
    );
    std::fs::remove_file(&path).ok();
}
