//! A full paper-scale run: one 8-server network configuration built from
//! the synthetic Internet study, compared across all four strategies, with
//! the global algorithm's adaptation events narrated.
//!
//! ```sh
//! cargo run --release --example adaptive_vs_static
//! ```

use wadc::core::engine::Algorithm;
use wadc::core::experiment::Experiment;
use wadc::sim::time::SimDuration;
use wadc::trace::study::BandwidthStudy;

fn main() {
    // The multi-day bandwidth study (45 host pairs across the US, Europe
    // and Brazil), from which the configuration draws noon-aligned trace
    // segments — exactly the paper's construction.
    let study = BandwidthStudy::default_study(1998);
    println!(
        "bandwidth study: {} hosts, {} pairs, {:.0} h per trace",
        study.hosts().len(),
        study.pair_count(),
        study.duration().as_secs_f64() / 3600.0
    );

    let exp = Experiment::from_study(8, &study, SimDuration::from_hours(24), 0, 1998);

    println!("\nrunning 8 servers x 180 images (~128 KB each) under four strategies...\n");
    let baseline = exp.run(Algorithm::DownloadAll);
    println!(
        "download-all: {:.0} s total, {:.1} s/image",
        baseline.completion_time.as_secs_f64(),
        baseline.mean_interarrival_secs()
    );

    for alg in [
        Algorithm::OneShot,
        Algorithm::global_default(),
        Algorithm::local_default(),
    ] {
        let r = exp.run(alg);
        assert!(r.completed);
        println!(
            "{:<12}: {:>6.0} s total, {:>5.1} s/image, {:.2}x speedup, {} relocations, {} change-overs",
            alg.name(),
            r.completion_time.as_secs_f64(),
            r.mean_interarrival_secs(),
            r.speedup_over(&baseline),
            r.relocations,
            r.changeovers,
        );
    }

    // Show how delivery pacing differs over the run: time of every 30th
    // image under the static and the adaptive strategy.
    let one_shot = exp.run(Algorithm::OneShot);
    let global = exp.run(Algorithm::global_default());
    println!("\nimage   one-shot arrival   global arrival");
    for i in (29..180).step_by(30) {
        println!(
            "{:>5}   {:>14.0} s   {:>12.0} s",
            i + 1,
            one_shot.arrivals[i].as_secs_f64(),
            global.arrivals[i].as_secs_f64()
        );
    }
}
