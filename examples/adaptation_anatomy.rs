//! Anatomy of one adaptive run: the audit log, the barrier latencies, the
//! convergence profile — the diagnostics the paper's discussion section
//! derives from its "relocation traces".
//!
//! ```sh
//! cargo run --release --example adaptation_anatomy
//! ```

use wadc::core::analysis::{converged_fraction, pacing_profile, summarize_adaptation};
use wadc::core::engine::{Algorithm, AuditEvent};
use wadc::core::experiment::Experiment;
use wadc::sim::time::SimDuration;
use wadc::trace::study::BandwidthStudy;

fn main() {
    let study = BandwidthStudy::default_study(7);
    let exp = Experiment::from_study(8, &study, SimDuration::from_hours(24), 3, 7);

    for alg in [
        Algorithm::OneShot,
        Algorithm::global_default(),
        Algorithm::local_default(),
    ] {
        let r = exp.run(alg);
        assert!(r.completed);
        let s = summarize_adaptation(&r);
        println!("=== {} ===", alg.name());
        println!(
            "planner: {} runs, {} found improvements (mean predicted gain {:.0}%)",
            s.planner_runs,
            s.planner_changes,
            100.0 * s.mean_predicted_improvement
        );
        println!(
            "moves: {} relocations, {:.2} s mean transit, {} barrier change-overs ({:.1} s mean barrier)",
            s.relocations, s.mean_transit_secs, s.changeovers, s.mean_barrier_secs
        );
        println!(
            "converged for the last {:.0}% of the run",
            100.0 * converged_fraction(&r)
        );
        let profile = pacing_profile(&r, 6);
        let bars: Vec<String> = profile.iter().map(|g| format!("{g:>6.1}s")).collect();
        println!("delivery pacing over the run: {}", bars.join(" "));
        println!();
    }

    // Zoom into the global run's first change-over, event by event.
    let r = exp.run(Algorithm::global_default());
    println!("=== first change-over of the global run, event by event ===");
    let mut shown = 0;
    for e in r.audit.events() {
        match e {
            AuditEvent::ChangeoverProposed { at, version, moves } => {
                println!(
                    "t={:>6.0}s  propose v{version} ({moves} moves)",
                    at.as_secs_f64()
                );
                shown = 1;
            }
            AuditEvent::ServerSuspended {
                at,
                server,
                reported_iteration,
                ..
            } if shown == 1 => println!(
                "t={:>6.0}s  server {server} reports iteration {reported_iteration} and suspends",
                at.as_secs_f64()
            ),
            AuditEvent::ChangeoverCommitted {
                at,
                version,
                switch_iteration,
            } if shown == 1 => {
                println!(
                    "t={:>6.0}s  commit v{version}: switch at iteration {switch_iteration}",
                    at.as_secs_f64()
                );
                shown = 2;
            }
            AuditEvent::RelocationStarted {
                at, op, from, to, ..
            } if shown == 2 => {
                println!("t={:>6.0}s  {op} departs {from} for {to}", at.as_secs_f64())
            }
            AuditEvent::RelocationFinished { at, op, host } if shown == 2 => {
                println!("t={:>6.0}s  {op} resumes at {host}", at.as_secs_f64());
                shown = 3; // stop after the first relocation completes
            }
            _ => {}
        }
        if shown == 3 {
            break;
        }
    }
}
