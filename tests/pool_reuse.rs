//! Message-pool and run-arena reuse are observationally inert: a run
//! drawing its message boxes from a warm [`MsgPool`] — or its entire
//! world (queue, monitors, network buffers, search scratch) from a warm
//! [`RunScratch`] recycled from earlier runs, even of *different*
//! algorithms — must be bit-identical to a cold run of the same world.

use wadc::core::engine::{Algorithm, MsgPool, RunScratch};
use wadc::core::experiment::Experiment;
use wadc::net::faults::FaultPlan;
use wadc::plan::ids::HostId;
use wadc::sim::time::{SimDuration, SimTime};

fn all_algorithms() -> [Algorithm; 4] {
    [
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        Algorithm::Local {
            period: SimDuration::from_secs(30),
            extra_candidates: 2,
        },
    ]
}

#[test]
fn warm_pool_runs_are_bit_identical_to_cold_runs() {
    for seed in [7u64, 1998] {
        let exp = Experiment::quick(4, seed);
        let mut pool = MsgPool::new();
        for alg in all_algorithms() {
            let cold = exp.run(alg);
            // The pool is warm with boxes recycled from every previous
            // algorithm's runs by the time the later iterations get here.
            let warm_a = exp.run_pooled(alg, &mut pool);
            let warm_b = exp.run_pooled(alg, &mut pool);
            for (label, warm) in [("first", &warm_a), ("second", &warm_b)] {
                assert_eq!(
                    warm.digest(),
                    cold.digest(),
                    "{} warm {} run diverged from cold (seed {seed})",
                    label,
                    alg.name()
                );
                assert_eq!(warm.arrivals, cold.arrivals, "{}", alg.name());
                assert_eq!(warm.net_stats, cold.net_stats, "{}", alg.name());
                assert_eq!(warm.audit.events(), cold.audit.events(), "{}", alg.name());
            }
        }
        assert!(
            !pool.is_empty(),
            "completed runs must park their message boxes for reuse"
        );
    }
}

#[test]
fn pool_survives_lossy_runs_unchanged() {
    // Retransmissions route boxes through the retry machinery; recycling
    // them must not perturb results either.
    let mut exp = Experiment::quick(4, 12);
    exp.template_mut().faults = wadc::net::faults::FaultPlan::none().with_loss(0.1);
    let mut pool = MsgPool::new();
    let cold = exp.run(Algorithm::Global {
        period: SimDuration::from_secs(30),
    });
    let warm_a = exp.run_pooled(
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        &mut pool,
    );
    let warm_b = exp.run_pooled(
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        &mut pool,
    );
    assert_eq!(warm_a.digest(), cold.digest());
    assert_eq!(warm_b.digest(), cold.digest());
    assert_eq!(warm_b.net_stats, cold.net_stats);
}

/// The arena analogue of `warm_pool_runs_are_bit_identical_to_cold_runs`:
/// one [`RunScratch`] cycles through the full algorithm portfolio, on
/// both network backends (independent per-pair links and the paper-WAN
/// shared-bottleneck topology), and every warm run must equal its cold
/// twin bit for bit. By the later iterations the arena holds capacity
/// recycled from every earlier algorithm's world — including the global
/// algorithm's search scratch and the local algorithm's location
/// vectors — so this catches any reset that forgets state.
#[test]
fn warm_arena_runs_are_bit_identical_to_cold_runs() {
    for seed in [7u64, 1998] {
        for (backend, exp) in [
            ("per-pair", Experiment::quick(4, seed)),
            ("paper-wan", Experiment::quick_topo(4, seed)),
        ] {
            let mut scratch = RunScratch::new();
            for alg in all_algorithms() {
                let cold = exp.run(alg);
                let warm_a = exp.run_scratch(alg, &mut scratch);
                let warm_b = exp.run_scratch(alg, &mut scratch);
                for (label, warm) in [("first", &warm_a), ("second", &warm_b)] {
                    assert_eq!(
                        warm.digest(),
                        cold.digest(),
                        "{label} warm-arena {} run diverged from cold \
                         (seed {seed}, {backend} backend)",
                        alg.name()
                    );
                    assert_eq!(warm.arrivals, cold.arrivals, "{}", alg.name());
                    assert_eq!(warm.net_stats, cold.net_stats, "{}", alg.name());
                    assert_eq!(warm.audit.events(), cold.audit.events(), "{}", alg.name());
                }
            }
            assert!(
                scratch.is_warm(),
                "completed runs must park their world in the arena"
            );
        }
    }
}

/// Faulty worlds churn the arena hardest — retransmissions cycle message
/// boxes through retry timers, a host death tears transfers out of the
/// network mid-flight and routes the planner through the masked
/// (surviving-subgraph) search — and recycling all of it must still be
/// invisible in the results.
#[test]
fn warm_arena_survives_loss_and_crash_faults_unchanged() {
    let mut exp = Experiment::quick(4, 12);
    exp.template_mut().faults = FaultPlan::none()
        .with_loss(0.1)
        .crash(HostId::new(2), SimTime::from_secs(40));
    let mut scratch = RunScratch::new();
    for alg in all_algorithms() {
        let cold = exp.run(alg);
        let warm_a = exp.run_scratch(alg, &mut scratch);
        let warm_b = exp.run_scratch(alg, &mut scratch);
        assert_eq!(
            warm_a.digest(),
            cold.digest(),
            "faulty warm-arena {} run diverged from cold",
            alg.name()
        );
        assert_eq!(warm_b.digest(), cold.digest(), "{}", alg.name());
        assert_eq!(warm_b.net_stats, cold.net_stats, "{}", alg.name());
    }
}
