//! Message-pool reuse is observationally inert: a run drawing its message
//! boxes from a warm pool (recycled from earlier runs, even of *different*
//! algorithms) must be bit-identical to a cold run of the same world.

use wadc::core::engine::{Algorithm, MsgPool};
use wadc::core::experiment::Experiment;
use wadc::sim::time::SimDuration;

fn all_algorithms() -> [Algorithm; 4] {
    [
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        Algorithm::Local {
            period: SimDuration::from_secs(30),
            extra_candidates: 2,
        },
    ]
}

#[test]
fn warm_pool_runs_are_bit_identical_to_cold_runs() {
    for seed in [7u64, 1998] {
        let exp = Experiment::quick(4, seed);
        let mut pool = MsgPool::new();
        for alg in all_algorithms() {
            let cold = exp.run(alg);
            // The pool is warm with boxes recycled from every previous
            // algorithm's runs by the time the later iterations get here.
            let warm_a = exp.run_pooled(alg, &mut pool);
            let warm_b = exp.run_pooled(alg, &mut pool);
            for (label, warm) in [("first", &warm_a), ("second", &warm_b)] {
                assert_eq!(
                    warm.digest(),
                    cold.digest(),
                    "{} warm {} run diverged from cold (seed {seed})",
                    label,
                    alg.name()
                );
                assert_eq!(warm.arrivals, cold.arrivals, "{}", alg.name());
                assert_eq!(warm.net_stats, cold.net_stats, "{}", alg.name());
                assert_eq!(warm.audit.events(), cold.audit.events(), "{}", alg.name());
            }
        }
        assert!(
            !pool.is_empty(),
            "completed runs must park their message boxes for reuse"
        );
    }
}

#[test]
fn pool_survives_lossy_runs_unchanged() {
    // Retransmissions route boxes through the retry machinery; recycling
    // them must not perturb results either.
    let mut exp = Experiment::quick(4, 12);
    exp.template_mut().faults = wadc::net::faults::FaultPlan::none().with_loss(0.1);
    let mut pool = MsgPool::new();
    let cold = exp.run(Algorithm::Global {
        period: SimDuration::from_secs(30),
    });
    let warm_a = exp.run_pooled(
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        &mut pool,
    );
    let warm_b = exp.run_pooled(
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        &mut pool,
    );
    assert_eq!(warm_a.digest(), cold.digest());
    assert_eq!(warm_b.digest(), cold.digest());
    assert_eq!(warm_b.net_stats, cold.net_stats);
}
