//! Observability integration tests: the exported Chrome trace obeys the
//! trace-event schema, the span stream is well-formed, and — the hard
//! constraint — attaching a tracer never changes what the simulation
//! does (golden digests stay byte-identical with tracing on or off).

use std::collections::HashMap;

use wadc::core::engine::Algorithm;
use wadc::core::experiment::Experiment;
use wadc::net::faults::FaultPlan;
use wadc::obs::{chrome_trace, render_report, write_jsonl, Entry, Json, Tracer};
use wadc::sim::time::SimDuration;

fn algorithms() -> [Algorithm; 4] {
    let thirty = SimDuration::from_secs(30);
    [
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global { period: thirty },
        Algorithm::Local {
            period: thirty,
            extra_candidates: 0,
        },
    ]
}

#[test]
fn tracing_is_digest_neutral_for_every_algorithm() {
    let exp = Experiment::quick(4, 7);
    for algorithm in algorithms() {
        let plain = exp.run(algorithm);
        let (obs, tracer) = Tracer::install();
        let traced = exp.run_observed(algorithm, obs);
        assert_eq!(
            plain.digest_hex(),
            traced.digest_hex(),
            "{}: tracing must not perturb the run",
            algorithm.name()
        );
        assert_eq!(plain.audit.digest(), traced.audit.digest());
        assert_eq!(plain.arrivals, traced.arrivals);
        // The tracer actually saw the run it did not perturb.
        assert!(!tracer.borrow().entries().is_empty());
    }
}

#[test]
fn tracing_is_digest_neutral_under_faults() {
    let mut exp = Experiment::quick(4, 11);
    exp.template_mut().faults = FaultPlan::none().with_loss(0.2);
    let algorithm = Algorithm::Global {
        period: SimDuration::from_secs(30),
    };
    let plain = exp.run(algorithm);
    let (obs, _tracer) = Tracer::install();
    let traced = exp.run_observed(algorithm, obs);
    assert_eq!(plain.digest_hex(), traced.digest_hex());
}

#[test]
fn chrome_trace_round_trips_and_passes_schema() {
    let exp = Experiment::quick(4, 3);
    let (obs, tracer) = Tracer::install();
    let r = exp.run_observed(
        Algorithm::Global {
            period: SimDuration::from_secs(10),
        },
        obs,
    );
    assert!(r.completed);
    let tracer = tracer.borrow();
    let doc = chrome_trace(&tracer);

    // The document must survive its own serialisation (both layouts).
    let reparsed = Json::parse(&doc.to_string_compact()).expect("compact parses");
    Json::parse(&doc.to_string_pretty()).expect("pretty parses");

    let events = reparsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    assert_eq!(
        reparsed.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );

    // Per-track stack discipline and monotone timestamps, as Perfetto
    // would enforce them.
    let mut depth: HashMap<i64, i64> = HashMap::new();
    let mut last_ts: HashMap<i64, f64> = HashMap::new();
    let mut saw = (false, false, false, false); // B, E, i, C
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        if ph != "E" {
            // End events need no name; everything else must be labelled.
            assert!(ev.get("name").and_then(Json::as_str).is_some(), "name");
        }
        assert!(ev.get("pid").and_then(Json::as_num).is_some(), "pid");
        let tid = ev.get("tid").and_then(Json::as_num).expect("tid") as i64;
        if ph == "M" {
            continue;
        }
        let ts = ev.get("ts").and_then(Json::as_num).expect("ts");
        assert!(ts >= 0.0);
        let prev = last_ts.entry(tid).or_insert(ts);
        assert!(ts >= *prev, "timestamps monotone per track");
        *prev = ts;
        match ph {
            "B" => {
                saw.0 = true;
                *depth.entry(tid).or_insert(0) += 1;
            }
            "E" => {
                saw.1 = true;
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E without matching B on tid {tid}");
            }
            "i" => {
                saw.2 = true;
                assert_eq!(ev.get("s").and_then(Json::as_str), Some("t"));
            }
            "C" => saw.3 = true,
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(saw.0 && saw.1, "trace must contain span begin/end pairs");
    assert!(saw.3, "trace must contain counter samples");
    for (tid, d) in depth {
        assert_eq!(d, 0, "unbalanced spans on tid {tid}");
    }

    // The sibling exporters work on the same trace.
    let mut jsonl = Vec::new();
    write_jsonl(&tracer, &mut jsonl).expect("jsonl into memory");
    let text = String::from_utf8(jsonl).expect("utf-8");
    for line in text.lines() {
        Json::parse(line).expect("every jsonl line parses");
    }
    let report = render_report(&tracer);
    assert!(report.contains("wadc run report"));
    assert!(report.contains("operator residency"));
}

/// Property test for the exported span stream: across seeds and
/// algorithms, every close matches the most recently opened span on its
/// track and timestamps never go backwards on any track. Checked
/// independently of `Tracer::check_well_formed`, which is also asserted.
#[test]
fn span_stream_is_well_formed_across_seeds() {
    let thirty = SimDuration::from_secs(30);
    for seed in 0..5u64 {
        for algorithm in [
            Algorithm::Global { period: thirty },
            Algorithm::Local {
                period: thirty,
                extra_candidates: 1,
            },
        ] {
            let mut exp = Experiment::quick(4, seed);
            if seed % 2 == 1 {
                // Odd seeds run lossy so abort/rollback closes are covered.
                exp.template_mut().faults = FaultPlan::none().with_loss(0.15);
            }
            let (obs, tracer) = Tracer::install();
            exp.run_observed(algorithm, obs);
            let tr = tracer.borrow();
            tr.check_well_formed().expect("tracer self-check");

            let n_tracks = tr.tracks().len();
            let mut stacks: Vec<Vec<usize>> = vec![Vec::new(); n_tracks];
            let mut last_at = vec![wadc::sim::time::SimTime::ZERO; n_tracks];
            for entry in tr.entries() {
                match *entry {
                    Entry::Open { span, at } => {
                        let track = tr.spans()[span.0 as usize].track.0 as usize;
                        assert!(at >= last_at[track], "seed {seed}: time went backwards");
                        last_at[track] = at;
                        stacks[track].push(span.0 as usize);
                    }
                    Entry::Close { span, at, .. } => {
                        let track = tr.spans()[span.0 as usize].track.0 as usize;
                        assert!(at >= last_at[track], "seed {seed}: time went backwards");
                        last_at[track] = at;
                        let top = stacks[track]
                            .pop()
                            .expect("close without an open span on its track");
                        assert_eq!(
                            top, span.0 as usize,
                            "seed {seed}: close must match the most recent open on its track"
                        );
                    }
                    Entry::Instant { .. } | Entry::Sample { .. } => {}
                }
            }
        }
    }
}
