//! The sweep fabric's determinism gate: a study swept across N worker
//! threads must be **byte-identical** to the sequential study — same
//! merged study digest, same per-config `RunResult` digests — for every
//! thread count, for all four algorithms, under fault plans, and with
//! observability recorders attached. Completion order, worker identity,
//! and per-worker pool warmth must never leak into results.
//!
//! Extends the `parallel_equals_sequential` pattern of PR 5 from a single
//! run pair to the whole `SweepDriver` fabric.

use wadc::core::engine::Algorithm;
use wadc::core::experiment::Experiment;
use wadc::core::study::{run_study, run_study_parallel, StudyParams, StudyResults};
use wadc::core::sweep::SweepDriver;
use wadc::net::faults::FaultPlan;
use wadc::obs::Tracer;
use wadc::trace::study::BandwidthStudy;
use wadc::verify::chaos::{run_chaos_suite, run_chaos_suite_sweep};

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The thread counts every property sweeps: boundary (1), even/odd small
/// counts, a deliberately oversubscribed prime, and whatever this machine
/// actually has.
fn thread_counts() -> Vec<usize> {
    vec![1, 2, 3, 7, available_threads()]
}

fn assert_studies_identical(seq: &StudyResults, par: &StudyResults, label: &str) {
    assert_eq!(
        seq.digest(),
        par.digest(),
        "{label}: merged study digest diverged"
    );
    assert_eq!(seq.outcomes.len(), par.outcomes.len(), "{label}");
    for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
        assert_eq!(a.config, b.config, "{label}: merge order broke");
        assert_eq!(
            a.download_all.digest(),
            b.download_all.digest(),
            "{label}: download-all digest diverged at config {}",
            a.config
        );
        for (i, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
            assert_eq!(
                x.digest(),
                y.digest(),
                "{label}: algorithm {i} digest diverged at config {}",
                a.config
            );
        }
    }
}

/// The headline property: threads=1 == threads=N across thread counts ×
/// seeds, over the quick study's full algorithm portfolio (download-all
/// plus one-shot, global, local — all four).
#[test]
fn study_digests_are_thread_count_invariant() {
    for seed in [7u64, 1998] {
        let params = StudyParams::quick(seed);
        let seq = run_study(&params);
        for threads in thread_counts() {
            let par = run_study_parallel(&params, threads);
            assert_studies_identical(&seq, &par, &format!("seed {seed}, threads {threads}"));
        }
    }
}

/// Fault plans draw from their own seeded streams, never from shared
/// state, so a *faulty* sweep is just as thread-count invariant — and the
/// plan must actually perturb the run (the property is not vacuous).
#[test]
fn faulty_study_digests_are_thread_count_invariant() {
    let clean = run_study(&StudyParams::quick(33));
    let mut params = StudyParams::quick(33);
    params.faults = FaultPlan::none().with_loss(0.05).with_probe_blackhole(0.1);
    let seq = run_study(&params);
    assert_ne!(
        seq.digest(),
        clean.digest(),
        "a lossy plan must perturb the study"
    );
    for threads in [2, 7] {
        let par = run_study_parallel(&params, threads);
        assert_studies_identical(&seq, &par, &format!("lossy study, threads {threads}"));
    }
}

/// The heaviest arena churn the fabric can see: a lossy study over the
/// paper-WAN shared-bottleneck topology, where each worker's [`RunScratch`]
/// arena recycles fair-share flow state, retransmission timers, and the
/// planner's search buffers across configurations. Threads {1, 4} must
/// both reproduce the sequential study exactly — at threads=1 a single
/// progressively warmer arena serves every configuration, at threads=4
/// four arenas each see an unpredictable subset.
///
/// [`RunScratch`]: wadc::core::engine::RunScratch
#[test]
fn faulty_topology_sweep_arenas_are_thread_count_invariant() {
    let mut params = StudyParams::quick(27);
    params.topology = Some(wadc::topo::preset::TopoPreset::PaperWan);
    params.faults = FaultPlan::none().with_loss(0.05);
    let seq = run_study(&params);
    for threads in [1, 4] {
        let par = run_study_parallel(&params, threads);
        assert_studies_identical(
            &seq,
            &par,
            &format!("lossy paper-wan study, threads {threads}"),
        );
    }
}

/// Observability is passive even inside sweep workers: every swept
/// config installs its own recorder on its worker's thread (recorders are
/// `Rc`-based and scoped to one run — sim time restarts per run — so
/// they cannot be worker-global) and the observed, swept runs must
/// reproduce the unobserved sequential study's digests exactly.
#[test]
fn observed_sweep_reproduces_unobserved_digests() {
    let params = StudyParams::quick(21);
    let seq = run_study(&params);
    let study = BandwidthStudy::default_study(params.master_seed);
    let pool = study.noon_trace_pool(params.trace_window);
    let observed: Vec<u64> = SweepDriver::new(3).sweep(
        params.n_configs,
        |_worker| (),
        |(), i| {
            let exp =
                Experiment::from_study_pool(params.n_servers, &pool, i as u64, params.master_seed)
                    .with_tree_shape(params.tree_shape)
                    .with_knowledge(params.knowledge)
                    .with_workload(params.workload);
            let (obs, _tracer) = Tracer::install();
            exp.run_observed(params.algorithms[0], obs).digest()
        },
    );
    for (i, digest) in observed.iter().enumerate() {
        assert_eq!(
            *digest,
            seq.outcomes[i].results[0].digest(),
            "recorder-attached sweep worker perturbed config {i}"
        );
    }
}

/// Chaos × parallel conformance: the 36-cell scenario × algorithm matrix
/// through the sweep driver at threads=4 must equal the sequential matrix
/// cell for cell.
#[test]
fn chaos_matrix_swept_at_four_threads_matches_sequential() {
    let seq = run_chaos_suite(4, 42).expect("sequential chaos matrix conforms");
    let par = run_chaos_suite_sweep(4, 42, 4).expect("swept chaos matrix conforms");
    assert_eq!(seq.len(), 36, "the matrix is 9 scenarios x 4 algorithms");
    assert_eq!(seq, par, "swept chaos matrix diverged from sequential");
}

/// Edge case: an empty sweep returns an empty study for any thread count.
#[test]
fn zero_config_study_is_empty_for_every_thread_count() {
    let mut params = StudyParams::quick(5);
    params.n_configs = 0;
    for threads in [1, 4] {
        let results = run_study_parallel(&params, threads);
        assert!(results.outcomes.is_empty());
        assert_eq!(results.digest(), run_study(&params).digest());
    }
}

/// Edge case: far more workers than configurations — the driver clamps
/// its team to the item count and the merge still lands in config order.
#[test]
fn more_threads_than_configs_is_exact() {
    let mut params = StudyParams::quick(11);
    params.n_configs = 2;
    let seq = run_study(&params);
    let par = run_study_parallel(&params, 16);
    assert_studies_identical(&seq, &par, "2 configs on 16 threads");
}

/// Edge case: a panicking configuration must propagate out of the sweep
/// (poisoning nothing, deadlocking nowhere) while the surviving workers
/// drain the remaining work and exit.
#[test]
fn panicking_config_propagates_out_of_the_sweep() {
    let result = std::panic::catch_unwind(|| {
        SweepDriver::new(3).sweep(
            12,
            |_worker| (),
            |(), i| {
                assert!(i != 4, "injected config failure");
                Experiment::quick(4, i as u64)
                    .run(Algorithm::OneShot)
                    .digest()
            },
        )
    });
    assert!(
        result.is_err(),
        "a worker panic must reach the sweep's caller"
    );
}

/// Warm vs cold per-worker pools: a threads=1 sweep runs every config
/// through ONE progressively warmer `MsgPool`, while `Experiment::run`
/// allocates cold — the digests must agree bit for bit anyway.
#[test]
fn warm_worker_pools_match_cold_runs() {
    let params = StudyParams::quick(13);
    let swept = run_study_parallel(&params, 1);
    let study = BandwidthStudy::default_study(params.master_seed);
    let pool = study.noon_trace_pool(params.trace_window);
    for (i, outcome) in swept.outcomes.iter().enumerate() {
        let exp =
            Experiment::from_study_pool(params.n_servers, &pool, i as u64, params.master_seed)
                .with_tree_shape(params.tree_shape)
                .with_knowledge(params.knowledge)
                .with_workload(params.workload);
        assert_eq!(
            outcome.download_all.digest(),
            exp.run(Algorithm::DownloadAll).digest(),
            "warm-pool download-all diverged from cold at config {i}"
        );
        for (j, result) in outcome.results.iter().enumerate() {
            assert_eq!(
                result.digest(),
                exp.run(params.algorithms[j]).digest(),
                "warm-pool run diverged from cold at config {i}, algorithm {j}"
            );
        }
    }
}
