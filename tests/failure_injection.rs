//! Failure injection: bandwidth collapses, pathological links, and the
//! engine's safety cap. The paper's protocols assume reliable delivery but
//! must survive arbitrarily hostile *bandwidth* — that is the whole point.

use std::sync::Arc;

use wadc::app::image::SizeDistribution;
use wadc::app::workload::WorkloadParams;
use wadc::core::engine::{Algorithm, AuditEvent, Engine, EngineConfig};
use wadc::net::faults::FaultPlan;
use wadc::net::link::LinkTable;
use wadc::plan::ids::HostId;
use wadc::sim::time::{SimDuration, SimTime};
use wadc::trace::model::BandwidthTrace;
use wadc::verify::invariants::assert_clean;

fn tiny_workload(images: usize) -> WorkloadParams {
    WorkloadParams {
        images_per_server: images,
        sizes: SizeDistribution {
            mean_bytes: 16.0 * 1024.0,
            rel_std_dev: 0.0,
            aspect: 1.0,
        },
    }
}

/// 4 servers + client; every link fast (64 KB/s) except that server 0's
/// link to the client collapses to a crawl at `collapse_at`.
fn collapsing_links(collapse_at: f64) -> LinkTable {
    let fast = Arc::new(BandwidthTrace::constant(64.0 * 1024.0));
    let collapsing = Arc::new(
        BandwidthTrace::from_steps(&[(0.0, 64.0 * 1024.0), (collapse_at, 512.0)]).unwrap(),
    );
    let mut links = LinkTable::new(5);
    for a in 0..5 {
        for b in (a + 1)..5 {
            links.set(HostId::new(a), HostId::new(b), fast.clone());
        }
    }
    links.set(HostId::new(0), HostId::new(4), collapsing);
    links
}

#[test]
fn all_algorithms_survive_a_mid_run_bandwidth_collapse() {
    for alg in [
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        Algorithm::Local {
            period: SimDuration::from_secs(30),
            extra_candidates: 1,
        },
    ] {
        let mut cfg = EngineConfig::new(4, alg).with_workload(tiny_workload(30));
        cfg.seed = 3;
        let r = Engine::new(cfg, collapsing_links(10.0)).run();
        assert!(r.completed, "{} wedged after the collapse", alg.name());
        assert_eq!(r.images_delivered, 30);
    }
}

#[test]
fn global_reroutes_around_the_collapse_and_beats_static() {
    // The collapse happens after the one-shot placement has committed to
    // the (initially fine) direct route; only on-line relocation can get
    // off the dying link.
    let run = |alg: Algorithm| {
        let mut cfg = EngineConfig::new(4, alg).with_workload(tiny_workload(40));
        cfg.seed = 5;
        Engine::new(cfg, collapsing_links(15.0)).run()
    };
    let one_shot = run(Algorithm::OneShot);
    let global = run(Algorithm::Global {
        period: SimDuration::from_secs(20),
    });
    assert!(one_shot.completed && global.completed);
    assert!(
        global.completion_time.as_secs_f64() < one_shot.completion_time.as_secs_f64() * 0.9,
        "global ({}) should clearly beat one-shot ({}) after the collapse",
        global.completion_time,
        one_shot.completion_time
    );
    // And the audit log shows adaptation happened after the collapse.
    let adapted_after_collapse = global.audit.events().iter().any(
        |e| matches!(e, AuditEvent::RelocationStarted { at, .. } if *at > SimTime::from_secs(15)),
    );
    assert!(
        adapted_after_collapse || global.relocations > 0,
        "expected post-collapse relocation"
    );
}

#[test]
fn floor_bandwidth_everywhere_is_survivable() {
    // Every link at 2 KB/s: miserable but must terminate correctly.
    let crawl = Arc::new(BandwidthTrace::constant(2048.0));
    let mut links = LinkTable::new(3);
    for a in 0..3 {
        for b in (a + 1)..3 {
            links.set(HostId::new(a), HostId::new(b), crawl.clone());
        }
    }
    let mut cfg = EngineConfig::new(2, Algorithm::OneShot).with_workload(tiny_workload(3));
    cfg.seed = 1;
    let r = Engine::new(cfg, links).run();
    assert!(r.completed);
    assert_eq!(r.images_delivered, 3);
}

#[test]
fn safety_cap_aborts_hopeless_runs() {
    // 16 KB images over 16 B/s links take ~1000 s each; a 10-minute cap
    // must abort the run and report partial progress instead of hanging.
    let dead = Arc::new(BandwidthTrace::constant(16.0));
    let mut links = LinkTable::new(3);
    for a in 0..3 {
        for b in (a + 1)..3 {
            links.set(HostId::new(a), HostId::new(b), dead.clone());
        }
    }
    let mut cfg = EngineConfig::new(2, Algorithm::DownloadAll).with_workload(tiny_workload(100));
    cfg.seed = 1;
    cfg.max_sim_time = SimDuration::from_mins(10);
    let r = Engine::new(cfg, links).run();
    assert!(!r.completed, "cap must fire");
    assert!(r.images_delivered < 100);
}

#[test]
fn permanent_total_collapse_cannot_wedge_any_algorithm() {
    // Every link goes dark 5 s in and never comes back. No algorithm can
    // finish, but every one must still *terminate* — partial progress, a
    // clean audit trail, and no wedged event loop.
    for alg in [
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
        Algorithm::Local {
            period: SimDuration::from_secs(30),
            extra_candidates: 1,
        },
    ] {
        let mut cfg = EngineConfig::new(4, alg).with_workload(tiny_workload(30));
        cfg.seed = 3;
        cfg.max_sim_time = SimDuration::from_mins(10);
        cfg.faults = FaultPlan::none().outage_all(SimTime::from_secs(5), SimTime::MAX);
        let r = Engine::new(cfg.clone(), collapsing_links(10.0)).run();
        assert!(
            !r.completed,
            "{} finished through a dead network",
            alg.name()
        );
        assert!(
            r.images_delivered < 30,
            "{} delivered everything without links",
            alg.name()
        );
        assert_clean(&cfg, &r);
    }
}

#[test]
fn finite_host_blackout_recovers_and_completes() {
    // One server host is unreachable for 50 s mid-run; transfers to and
    // from it queue up, drain when it returns, and the run completes.
    let mut cfg = EngineConfig::new(
        4,
        Algorithm::Global {
            period: SimDuration::from_secs(30),
        },
    )
    .with_workload(tiny_workload(20));
    cfg.seed = 3;
    cfg.faults = FaultPlan::none().blackout(
        HostId::new(2),
        SimTime::from_secs(10),
        SimTime::from_secs(60),
    );
    let r = Engine::new(cfg.clone(), collapsing_links(10.0)).run();
    assert!(r.completed, "blackout must only delay, not kill, the run");
    assert_eq!(r.images_delivered, 20);
    assert_clean(&cfg, &r);
}

#[test]
fn failed_moves_roll_back_and_the_run_still_completes() {
    // Every operator-state transfer is injected to fail: the collapse
    // still provokes relocation attempts, each one must roll back to its
    // origin host, and the computation must finish under the old
    // placement.
    let mut cfg = EngineConfig::new(
        4,
        Algorithm::Global {
            period: SimDuration::from_secs(20),
        },
    )
    .with_workload(tiny_workload(40));
    cfg.seed = 5;
    cfg.faults = FaultPlan::none().with_move_failure(1.0);
    let r = Engine::new(cfg.clone(), collapsing_links(15.0)).run();
    assert!(r.completed, "rollbacks must not wedge the computation");
    assert_eq!(r.images_delivered, 40);
    let rollbacks = r
        .audit
        .events()
        .iter()
        .filter(|e| matches!(e, AuditEvent::RelocationAborted { .. }))
        .count();
    let finishes = r
        .audit
        .events()
        .iter()
        .filter(|e| matches!(e, AuditEvent::RelocationFinished { .. }))
        .count();
    assert!(rollbacks > 0, "the collapse must trigger at least one move");
    assert_eq!(finishes, 0, "every move was injected to fail");
    assert_clean(&cfg, &r);
}

#[test]
fn lossy_runs_reproduce_bit_for_bit() {
    // The fault plan is part of the deterministic input: two runs of the
    // same (seed, config, plan) under 10% loss agree digest for digest.
    let run = || {
        let mut cfg = EngineConfig::new(
            4,
            Algorithm::Local {
                period: SimDuration::from_secs(30),
                extra_candidates: 1,
            },
        )
        .with_workload(tiny_workload(20));
        cfg.seed = 7;
        cfg.faults = FaultPlan::none().with_loss(0.1).with_probe_blackhole(0.3);
        Engine::new(cfg, collapsing_links(10.0)).run()
    };
    let a = run();
    let b = run();
    assert!(a.net_stats.dropped > 0, "10% loss dropped nothing");
    assert_eq!(a.net_stats.retransmits, b.net_stats.retransmits);
    assert_eq!(a.audit.digest(), b.audit.digest());
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn asymmetric_cliff_traces_do_not_break_monitoring() {
    // A link that oscillates violently between cliff edges exercises the
    // cache/piggyback path with extreme measurements.
    let cliff = Arc::new(
        BandwidthTrace::from_steps(&[
            (0.0, 1_000_000.0),
            (5.0, 300.0),
            (10.0, 1_000_000.0),
            (15.0, 300.0),
            (20.0, 1_000_000.0),
        ])
        .unwrap(),
    );
    let fast = Arc::new(BandwidthTrace::constant(200_000.0));
    let mut links = LinkTable::new(5);
    for a in 0..5 {
        for b in (a + 1)..5 {
            links.set(HostId::new(a), HostId::new(b), fast.clone());
        }
    }
    links.set(HostId::new(1), HostId::new(4), cliff);
    let mut cfg = EngineConfig::new(
        4,
        Algorithm::Global {
            period: SimDuration::from_secs(10),
        },
    )
    .with_workload(tiny_workload(25));
    cfg.seed = 9;
    let r = Engine::new(cfg, links).run();
    assert!(r.completed);
    assert_eq!(r.images_delivered, 25);
}
