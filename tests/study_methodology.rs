//! Tests of the 300-configuration study methodology and its aggregation.

use wadc::core::engine::Algorithm;
use wadc::core::experiment::Experiment;
use wadc::core::study::{run_study, run_study_parallel, StudyParams};
use wadc::sim::time::{SimDuration, SimTime};
use wadc::trace::study::BandwidthStudy;

#[test]
fn study_speedups_are_finite_and_positive() {
    let params = StudyParams::quick(101);
    let results = run_study(&params);
    for alg in 0..params.algorithms.len() {
        for s in results.speedups(alg) {
            assert!(s.is_finite() && s > 0.0);
        }
        let sorted = results.sorted_speedups(alg);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert!(results.mean_speedup(alg) > 0.0);
        assert!(results.median_speedup(alg) > 0.0);
    }
}

#[test]
fn configurations_differ_but_are_reproducible() {
    let study = BandwidthStudy::default_study(5);
    let window = SimDuration::from_hours(2);
    let a0 = Experiment::from_study(4, &study, window, 0, 5);
    let a0_again = Experiment::from_study(4, &study, window, 0, 5);
    let a1 = Experiment::from_study(4, &study, window, 1, 5);

    let probe = |e: &Experiment| -> Vec<f64> {
        let mut v = Vec::new();
        for x in 0..5usize {
            for y in (x + 1)..5 {
                v.push(
                    e.links()
                        .bandwidth_at(
                            wadc::plan::ids::HostId::new(x),
                            wadc::plan::ids::HostId::new(y),
                            SimTime::ZERO,
                        )
                        .expect("complete link table"),
                );
            }
        }
        v
    };
    assert_eq!(probe(&a0), probe(&a0_again), "same index → same links");
    assert_ne!(probe(&a0), probe(&a1), "different index → different links");
}

#[test]
fn parallel_study_is_deterministic_across_thread_counts() {
    let params = StudyParams::quick(77);
    let t1 = run_study_parallel(&params, 1);
    let t4 = run_study_parallel(&params, 4);
    for (a, b) in t1.outcomes.iter().zip(&t4.outcomes) {
        assert_eq!(a.config, b.config);
        assert_eq!(
            a.download_all.completion_time,
            b.download_all.completion_time
        );
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.completion_time, y.completion_time);
        }
    }
}

#[test]
fn download_all_speedup_over_itself_is_one() {
    let mut params = StudyParams::quick(9);
    params.algorithms = vec![Algorithm::DownloadAll];
    let results = run_study(&params);
    for s in results.speedups(0) {
        assert!((s - 1.0).abs() < 1e-12);
    }
    assert!((results.median_ratio(0, 0) - 1.0).abs() < 1e-12);
}

#[test]
fn interarrival_aggregation_matches_runs() {
    let params = StudyParams::quick(13);
    let results = run_study(&params);
    let manual: f64 = results
        .outcomes
        .iter()
        .map(|o| o.download_all.mean_interarrival_secs())
        .sum::<f64>()
        / results.outcomes.len() as f64;
    assert!((results.mean_interarrival_download_all() - manual).abs() < 1e-12);
}
