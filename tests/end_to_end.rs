//! End-to-end integration tests spanning the whole workspace: traces →
//! network configurations → engine runs → study aggregation.

use wadc::app::image::SizeDistribution;
use wadc::app::workload::WorkloadParams;
use wadc::core::engine::Algorithm;
use wadc::core::experiment::Experiment;
use wadc::sim::time::SimDuration;
use wadc::trace::study::BandwidthStudy;
use wadc::KnowledgeMode;

/// A mid-sized world: 8 servers, 20 images of ~32 KB — big enough to
/// exercise relocation, small enough for debug-mode CI.
fn mid_world(seed: u64) -> Experiment {
    let study = BandwidthStudy::conduct(
        wadc::trace::study::default_hosts(),
        SimDuration::from_hours(8),
        seed,
    );
    Experiment::from_study(8, &study, SimDuration::from_hours(6), 0, seed).with_workload(
        WorkloadParams {
            images_per_server: 20,
            sizes: SizeDistribution {
                mean_bytes: 32.0 * 1024.0,
                rel_std_dev: 0.25,
                aspect: 4.0 / 3.0,
            },
        },
    )
}

const ALL_ALGORITHMS: [Algorithm; 4] = [
    Algorithm::DownloadAll,
    Algorithm::OneShot,
    Algorithm::Global {
        period: SimDuration::from_mins(2),
    },
    Algorithm::Local {
        period: SimDuration::from_mins(2),
        extra_candidates: 1,
    },
];

#[test]
fn every_algorithm_delivers_the_full_sequence_in_order() {
    let exp = mid_world(11);
    for alg in ALL_ALGORITHMS {
        let r = exp.run(alg);
        assert!(r.completed, "{} did not complete", alg.name());
        assert_eq!(r.images_delivered, 20, "{}", alg.name());
        assert_eq!(r.arrivals.len(), 20);
        for w in r.arrivals.windows(2) {
            assert!(w[0] < w[1], "{}: arrivals out of order", alg.name());
        }
    }
}

#[test]
fn relocation_beats_download_all_on_average() {
    let mut speedups = (0.0, 0.0, 0.0);
    let n = 6;
    for seed in 0..n {
        let exp = mid_world(seed);
        let da = exp.run(Algorithm::DownloadAll);
        speedups.0 += exp.run(Algorithm::OneShot).speedup_over(&da);
        speedups.1 += exp
            .run(Algorithm::Global {
                period: SimDuration::from_mins(2),
            })
            .speedup_over(&da);
        speedups.2 += exp
            .run(Algorithm::Local {
                period: SimDuration::from_mins(2),
                extra_candidates: 0,
            })
            .speedup_over(&da);
    }
    let n = n as f64;
    assert!(
        speedups.0 / n > 1.2,
        "one-shot mean speedup {} too low",
        speedups.0 / n
    );
    assert!(
        speedups.1 / n > 1.2,
        "global mean speedup {} too low",
        speedups.1 / n
    );
    assert!(
        speedups.2 / n > 1.2,
        "local mean speedup {} too low",
        speedups.2 / n
    );
}

#[test]
fn online_relocation_does_not_lose_to_static_on_average() {
    // Over several worlds, global ≥ one-shot (within noise): the paper's
    // central claim that on-line relocation adds to one-shot gains.
    let mut global_total = 0.0;
    let mut one_shot_total = 0.0;
    for seed in 20..26 {
        let exp = mid_world(seed);
        let da = exp.run(Algorithm::DownloadAll);
        one_shot_total += exp.run(Algorithm::OneShot).speedup_over(&da);
        global_total += exp
            .run(Algorithm::Global {
                period: SimDuration::from_mins(2),
            })
            .speedup_over(&da);
    }
    assert!(
        global_total > one_shot_total * 0.95,
        "global ({global_total:.2}) should not lose to one-shot ({one_shot_total:.2})"
    );
}

#[test]
fn global_runs_use_the_barrier_protocol() {
    let exp = mid_world(31);
    let r = exp.run(Algorithm::Global {
        period: SimDuration::from_mins(2),
    });
    assert!(r.completed);
    // Every committed change-over required barrier traffic at high
    // priority; relocations can only follow change-overs.
    if r.changeovers > 0 {
        assert!(r.net_stats.high_priority_completed > 0);
        assert!(r.relocations > 0, "a change-over should move operators");
    }
    assert!(
        r.changeovers <= r.planner_runs,
        "cannot commit more change-overs than planning rounds"
    );
    // Static strategies never use priority traffic or move operators.
    let os = exp.run(Algorithm::OneShot);
    assert_eq!(os.relocations, 0);
    assert_eq!(os.changeovers, 0);
    assert_eq!(os.net_stats.high_priority_completed, 0);
}

#[test]
fn local_runs_relocate_without_barriers() {
    let mut any_moves = false;
    for seed in 40..46 {
        let exp = mid_world(seed);
        let r = exp.run(Algorithm::Local {
            period: SimDuration::from_mins(1),
            extra_candidates: 2,
        });
        assert!(r.completed);
        assert_eq!(r.changeovers, 0, "local never commits global change-overs");
        assert_eq!(
            r.net_stats.high_priority_completed, 0,
            "local uses no barrier traffic"
        );
        any_moves |= r.relocations > 0;
    }
    assert!(
        any_moves,
        "local algorithm should relocate at least once across six worlds"
    );
}

#[test]
fn oracle_knowledge_is_at_least_as_good_on_average() {
    let mut oracle_total = 0.0;
    let mut monitored_total = 0.0;
    for seed in 50..60 {
        let exp = mid_world(seed);
        let da = exp.run(Algorithm::DownloadAll);
        let monitored = exp.clone().run(Algorithm::Global {
            period: SimDuration::from_mins(2),
        });
        let oracle = {
            let e = exp.with_knowledge(KnowledgeMode::Oracle);
            e.run(Algorithm::Global {
                period: SimDuration::from_mins(2),
            })
        };
        monitored_total += monitored.speedup_over(&da);
        oracle_total += oracle.speedup_over(&da);
    }
    assert!(
        oracle_total > monitored_total * 0.9,
        "perfect knowledge ({oracle_total:.2}) should not lose badly to monitored ({monitored_total:.2})"
    );
}

#[test]
fn workload_conservation_across_the_network() {
    // Total bytes delivered on the wire must at least cover every image
    // that crossed a host boundary once (demands/data/overheads only add).
    let exp = mid_world(60);
    let r = exp.run(Algorithm::DownloadAll);
    // Under download-all every server ships all its images to the client.
    let wl = wadc::app::workload::Workload::generate(
        &exp.template().workload,
        8,
        wadc::sim::rng::derive_seed(exp.template().seed, 1),
    );
    let total_image_bytes: u64 = (0..8).map(|s| wl.server(s).total_bytes()).sum();
    assert!(
        r.net_stats.bytes_delivered > total_image_bytes,
        "wire bytes {} must exceed raw image bytes {total_image_bytes}",
        r.net_stats.bytes_delivered
    );
}
