//! Protocol properties verified from the outside through the audit log:
//! barrier ordering, light-move timing, wavefront staggering.

use wadc::core::engine::{Algorithm, AuditEvent};
use wadc::core::experiment::Experiment;
use wadc::sim::time::SimDuration;
use wadc::sim::time::SimTime;

fn global_run(seed: u64) -> wadc::core::engine::RunResult {
    Experiment::quick(6, seed).run(Algorithm::Global {
        period: SimDuration::from_secs(15),
    })
}

fn local_run(seed: u64) -> wadc::core::engine::RunResult {
    Experiment::quick(6, seed).run(Algorithm::Local {
        period: SimDuration::from_secs(15),
        extra_candidates: 1,
    })
}

#[test]
fn audit_events_are_chronological() {
    for seed in 0..6 {
        for r in [global_run(seed), local_run(seed)] {
            let mut prev = SimTime::ZERO;
            for e in r.audit.events() {
                assert!(e.at() >= prev, "audit log out of order");
                prev = e.at();
            }
        }
    }
}

#[test]
fn every_global_relocation_follows_a_commit() {
    for seed in 0..8 {
        let r = global_run(seed);
        let events = r.audit.events();
        for (i, e) in events.iter().enumerate() {
            if let AuditEvent::RelocationStarted { at, .. } = e {
                // Some commit happened earlier (or at the same instant).
                let committed_before = events[..=i]
                    .iter()
                    .any(|x| matches!(x, AuditEvent::ChangeoverCommitted { at: c, .. } if c <= at));
                assert!(
                    committed_before,
                    "seed {seed}: relocation without a prior commit"
                );
            }
        }
    }
}

#[test]
fn commits_follow_reports_from_every_server() {
    for seed in 0..8 {
        let r = global_run(seed);
        let events = r.audit.events();
        for (i, e) in events.iter().enumerate() {
            if let AuditEvent::ChangeoverCommitted { version, .. } = e {
                let suspensions: Vec<usize> = events[..i]
                    .iter()
                    .filter_map(|x| match x {
                        AuditEvent::ServerSuspended {
                            server, version: v, ..
                        } if v == version => Some(*server),
                        _ => None,
                    })
                    .collect();
                assert_eq!(
                    suspensions.len(),
                    6,
                    "seed {seed}: commit v{version} without all six server reports"
                );
                let unique: std::collections::HashSet<usize> =
                    suspensions.iter().copied().collect();
                assert_eq!(unique.len(), 6, "duplicate server reports for one version");
            }
        }
    }
}

#[test]
fn proposals_precede_their_commits() {
    for seed in 0..8 {
        let r = global_run(seed);
        let events = r.audit.events();
        for (i, e) in events.iter().enumerate() {
            if let AuditEvent::ChangeoverCommitted { version, .. } = e {
                assert!(
                    events[..i].iter().any(|x| matches!(
                        x,
                        AuditEvent::ChangeoverProposed { version: v, .. } if v == version
                    )),
                    "seed {seed}: commit v{version} without a proposal"
                );
            }
        }
    }
}

#[test]
fn relocation_finish_matches_start() {
    for seed in 0..8 {
        for r in [global_run(seed), local_run(seed)] {
            let events = r.audit.events();
            let mut in_flight = std::collections::HashMap::new();
            for e in events {
                match e {
                    AuditEvent::RelocationStarted { op, to, .. } => {
                        let prev = in_flight.insert(*op, *to);
                        assert!(prev.is_none(), "operator {op} moved twice concurrently");
                    }
                    AuditEvent::RelocationFinished { op, host, .. } => {
                        let expected = in_flight.remove(op);
                        assert_eq!(
                            expected,
                            Some(*host),
                            "operator {op} finished at an unexpected host"
                        );
                    }
                    _ => {}
                }
            }
            assert!(
                in_flight.is_empty(),
                "operators still in flight at end of run"
            );
            assert_eq!(
                r.audit.relocations().count() as u32,
                r.relocations,
                "audit log and counter disagree"
            );
        }
    }
}

#[test]
fn local_decisions_follow_the_wavefront_levels() {
    // Within each epoch-tick instant, all decisions carry the same level,
    // and successive decision instants cycle levels 0, 1, 2, ...
    for seed in 0..8 {
        let r = local_run(seed);
        let mut by_time: Vec<(SimTime, usize)> = Vec::new();
        for e in r.audit.events() {
            if let AuditEvent::LocalDecision { at, level, .. } = e {
                by_time.push((*at, *level));
            }
        }
        for w in by_time.windows(2) {
            let ((t1, l1), (t2, l2)) = (w[0], w[1]);
            if t1 == t2 {
                assert_eq!(l1, l2, "mixed levels within one epoch tick");
            }
        }
    }
}

#[test]
fn planner_never_reports_a_worse_result_than_its_start() {
    for seed in 0..8 {
        let r = global_run(seed);
        for e in r.audit.events() {
            if let AuditEvent::PlannerRan {
                cost_before,
                cost_after,
                ..
            } = e
            {
                assert!(
                    *cost_after <= cost_before + 1e-9,
                    "seed {seed}: search regressed {cost_before} -> {cost_after}"
                );
            }
        }
    }
}

#[test]
fn planner_audit_is_consistent_under_the_contended_objective() {
    // Regression test: cost_before and cost_after must be measured under
    // the same objective, or contended runs log spurious regressions.
    use wadc::core::algorithms::one_shot::Objective;
    for seed in 0..6 {
        let exp = Experiment::quick(6, seed).with_objective(Objective::Contended);
        let r = exp.run(Algorithm::Global {
            period: SimDuration::from_secs(15),
        });
        for e in r.audit.events() {
            if let AuditEvent::PlannerRan {
                cost_before,
                cost_after,
                ..
            } = e
            {
                assert!(
                    *cost_after <= cost_before + 1e-9,
                    "seed {seed}: contended search regressed {cost_before} -> {cost_after}"
                );
            }
        }
    }
}

#[test]
fn one_shot_audit_has_exactly_one_planner_event() {
    let r = Experiment::quick(4, 3).run(Algorithm::OneShot);
    let planner_events = r
        .audit
        .events()
        .iter()
        .filter(|e| matches!(e, AuditEvent::PlannerRan { .. }))
        .count();
    assert_eq!(planner_events, 1);
    assert_eq!(r.audit.changeovers().count(), 0);
    assert_eq!(r.audit.relocations().count(), 0);
}
