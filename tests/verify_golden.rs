//! Tier-1 gate for the verification subsystem: golden digest fixtures,
//! the determinism acceptance criterion, and the differential suite.

use wadc::core::engine::Algorithm;
use wadc::core::experiment::Experiment;
use wadc::sim::time::SimDuration;
use wadc::verify::determinism::check_determinism;
use wadc::verify::differential::{run_suite, suite_algorithms};
use wadc::verify::golden;
use wadc::verify::invariants::assert_clean;

/// The same fixture `wadc verify` embeds.
const GOLDEN_FIXTURE: &str = include_str!("golden/digests.txt");

#[test]
fn golden_digests_have_not_drifted() {
    let failures = golden::compare_fixture(GOLDEN_FIXTURE);
    assert!(
        failures.is_empty(),
        "golden digest drift (acknowledge intentional changes with \
         `wadc verify --print-golden > tests/golden/digests.txt`):\n{}",
        failures.join("\n")
    );
}

#[test]
fn identical_seed_and_config_give_identical_digests() {
    // The acceptance criterion, word for word: two runs of `Experiment`
    // with identical `(seed, config)` produce identical audit-log digests.
    let exp = Experiment::quick(8, 1998);
    for algorithm in [
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global {
            period: SimDuration::from_secs(60),
        },
        Algorithm::Local {
            period: SimDuration::from_secs(60),
            extra_candidates: 1,
        },
    ] {
        let digests = check_determinism(&exp, algorithm)
            .unwrap_or_else(|e| panic!("nondeterministic run: {e}"));
        // A rebuilt experiment with the same (seed, config) also agrees.
        let rebuilt = Experiment::quick(8, 1998).run(algorithm);
        assert_eq!(
            rebuilt.audit.digest(),
            digests.audit,
            "{}: rebuilt experiment diverged",
            algorithm.name()
        );
    }
}

#[test]
fn differential_suite_passes_for_all_three_algorithms() {
    let failures = run_suite(42);
    assert!(
        failures.is_empty(),
        "differential/metamorphic failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn quick_world_runs_satisfy_every_invariant() {
    let exp = Experiment::quick(4, 7);
    for algorithm in suite_algorithms() {
        let mut cfg = exp.template().clone();
        cfg.algorithm = algorithm;
        let result = exp.run(algorithm);
        assert_clean(&cfg, &result);
    }
}
