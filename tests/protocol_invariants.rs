//! Protocol-level invariants of the demand-driven engine, exercised across
//! randomized configurations, algorithms, tree shapes and server counts.
//! These run in debug mode, so the engine's internal `debug_assert!`s
//! (light-move, ordered gathers, single-output slots) are armed.

use wadc::core::engine::Algorithm;
use wadc::core::experiment::Experiment;
use wadc::sim::time::SimDuration;
use wadc::TreeShape;

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::DownloadAll,
        Algorithm::OneShot,
        Algorithm::Global {
            period: SimDuration::from_secs(45),
        },
        Algorithm::Local {
            period: SimDuration::from_secs(45),
            extra_candidates: 1,
        },
    ]
}

#[test]
fn random_worlds_always_complete_in_order() {
    for seed in 0..8u64 {
        let exp = Experiment::quick(4, seed);
        for alg in algorithms() {
            let r = exp.run(alg);
            assert!(r.completed, "seed {seed}, {}", alg.name());
            assert_eq!(r.images_delivered, 8);
            for w in r.arrivals.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}

#[test]
fn odd_server_counts_are_supported() {
    // Non-power-of-two trees exercise the unbalanced-builder paths.
    for n in [2usize, 3, 5, 6, 7, 9] {
        let exp = Experiment::quick(n, 3);
        for alg in algorithms() {
            let r = exp.run(alg);
            assert!(r.completed, "{n} servers, {}", alg.name());
            assert_eq!(r.images_delivered, 8);
        }
    }
}

#[test]
fn both_tree_shapes_run_every_algorithm() {
    for shape in [TreeShape::CompleteBinary, TreeShape::LeftDeep] {
        let exp = Experiment::quick(6, 9).with_tree_shape(shape);
        for alg in algorithms() {
            let r = exp.run(alg);
            assert!(r.completed, "{shape:?}, {}", alg.name());
        }
    }
}

#[test]
fn runs_are_bit_for_bit_deterministic() {
    for alg in algorithms() {
        let a = Experiment::quick(5, 17).run(alg);
        let b = Experiment::quick(5, 17).run(alg);
        assert_eq!(a.arrivals, b.arrivals, "{}", alg.name());
        assert_eq!(a.relocations, b.relocations);
        assert_eq!(a.changeovers, b.changeovers);
        assert_eq!(a.planner_runs, b.planner_runs);
        assert_eq!(a.net_stats.submitted, b.net_stats.submitted);
        assert_eq!(a.net_stats.bytes_delivered, b.net_stats.bytes_delivered);
    }
}

#[test]
fn interarrival_statistics_are_consistent() {
    let r = Experiment::quick(4, 21).run(Algorithm::OneShot);
    assert_eq!(r.interarrival.count(), r.arrivals.len() as u64);
    // Mean inter-arrival × count == completion time (first gap measured
    // from t = 0).
    let reconstructed = r.mean_interarrival_secs() * r.arrivals.len() as f64;
    assert!((reconstructed - r.completion_time.as_secs_f64()).abs() < 1e-6);
}

#[test]
fn static_algorithms_never_transfer_operator_state() {
    for seed in 0..5u64 {
        let exp = Experiment::quick(4, seed);
        assert_eq!(exp.run(Algorithm::DownloadAll).relocations, 0);
        assert_eq!(exp.run(Algorithm::OneShot).relocations, 0);
    }
}

#[test]
fn every_wire_message_is_accounted() {
    let exp = Experiment::quick(4, 7);
    let r = exp.run(Algorithm::DownloadAll);
    let s = r.net_stats;
    assert_eq!(s.submitted, s.completed, "no transfers left in flight");
    assert!(s.bytes_delivered > 0);
}

#[test]
fn single_image_workload_works() {
    use wadc::app::image::SizeDistribution;
    use wadc::app::workload::WorkloadParams;
    let exp = Experiment::quick(4, 2).with_workload(WorkloadParams {
        images_per_server: 1,
        sizes: SizeDistribution::paper_defaults(),
    });
    for alg in algorithms() {
        let r = exp.run(alg);
        assert!(r.completed, "{}", alg.name());
        assert_eq!(r.images_delivered, 1);
    }
}

#[test]
fn very_frequent_relocation_still_terminates() {
    // A 5-second period at quick scale forces many planning rounds and
    // change-overs mid-pipeline; the barrier protocol must never wedge.
    let exp = Experiment::quick(6, 13);
    let r = exp.run(Algorithm::Global {
        period: SimDuration::from_secs(5),
    });
    assert!(r.completed, "barrier protocol wedged");
    let r = exp.run(Algorithm::Local {
        period: SimDuration::from_secs(5),
        extra_candidates: 3,
    });
    assert!(r.completed, "local wavefront wedged");
}
